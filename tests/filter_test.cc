// Tests for the register-blocked Bloom filter and the adaptive controller.
#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "filter/adaptive.h"
#include "filter/blocked_bloom.h"
#include "util/hash.h"
#include "util/rng.h"

namespace pjoin {
namespace {

TEST(BlockedBloom, NoFalseNegatives) {
  BlockedBloomFilter bloom;
  bloom.Resize(10000);
  std::vector<uint64_t> hashes;
  for (uint64_t k = 0; k < 10000; ++k) hashes.push_back(HashInt64(k));
  for (uint64_t h : hashes) bloom.InsertUnsynchronized(h);
  for (uint64_t h : hashes) EXPECT_TRUE(bloom.MayContain(h));
}

TEST(BlockedBloom, FalsePositiveRateBounded) {
  BlockedBloomFilter bloom;
  bloom.Resize(100000);
  for (uint64_t k = 0; k < 100000; ++k) {
    bloom.InsertUnsynchronized(HashInt64(k));
  }
  uint64_t false_positives = 0;
  const uint64_t kProbes = 100000;
  for (uint64_t k = 0; k < kProbes; ++k) {
    if (bloom.MayContain(HashInt64(k + 10'000'000))) ++false_positives;
  }
  // Register-blocked filters at 16 bits/key with k=4 stay well below 5% FPR.
  EXPECT_LT(false_positives, kProbes / 20);
}

TEST(BlockedBloom, EmptyFilterRejectsEverything) {
  BlockedBloomFilter bloom;
  bloom.Resize(1000);
  int hits = 0;
  for (uint64_t k = 0; k < 1000; ++k) {
    if (bloom.MayContain(HashInt64(k))) ++hits;
  }
  EXPECT_EQ(hits, 0);
}

TEST(BlockedBloom, BitMaskSetsAtMostFourBits) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    uint64_t mask = BlockedBloomFilter::BitMask(rng.Next());
    int bits = std::popcount(mask);
    EXPECT_GE(bits, 1);
    EXPECT_LE(bits, 4);
  }
}

TEST(BlockedBloom, BlockIndexUsesLowBits) {
  // All keys of one radix partition (same low bits) must map to blocks in
  // that partition's range: block mod fanout == partition.
  BlockedBloomFilter bloom;
  bloom.Resize(1 << 16, /*min_blocks=*/64);
  const uint64_t fanout = 64;
  for (uint64_t i = 0; i < 10000; ++i) {
    uint64_t hash = HashInt64(i);
    uint64_t partition = hash & (fanout - 1);
    EXPECT_EQ(bloom.BlockIndex(hash) & (fanout - 1), partition);
  }
}

TEST(BlockedBloom, MinBlocksRespected) {
  BlockedBloomFilter bloom;
  bloom.Resize(1, /*min_blocks=*/256);
  EXPECT_GE(bloom.num_blocks(), 256u);
}

TEST(BlockedBloom, AtomicInsertVisible) {
  BlockedBloomFilter bloom;
  bloom.Resize(100);
  bloom.InsertAtomic(HashInt64(7));
  EXPECT_TRUE(bloom.MayContain(HashInt64(7)));
}

TEST(AdaptiveController, StaysOnAtLowPassRate) {
  AdaptiveFilterController ctrl(0.75, 1000);
  for (int i = 0; i < 100; ++i) ctrl.ReportWindow(100, 10);
  EXPECT_TRUE(ctrl.enabled());
}

TEST(AdaptiveController, SwitchesOffAtHighPassRate) {
  AdaptiveFilterController ctrl(0.75, 1000);
  for (int i = 0; i < 100 && ctrl.enabled(); ++i) ctrl.ReportWindow(100, 99);
  EXPECT_FALSE(ctrl.enabled());
}

TEST(AdaptiveController, WaitsForMinimumSamples) {
  AdaptiveFilterController ctrl(0.75, 100000);
  ctrl.ReportWindow(100, 100);
  EXPECT_TRUE(ctrl.enabled());  // too few samples to decide
}

TEST(AdaptiveController, ResetReenables) {
  AdaptiveFilterController ctrl(0.5, 10);
  ctrl.ReportWindow(1000, 1000);
  EXPECT_FALSE(ctrl.enabled());
  ctrl.Reset();
  EXPECT_TRUE(ctrl.enabled());
  EXPECT_EQ(ctrl.sampled_checks(), 0u);
}

}  // namespace
}  // namespace pjoin
