// Tests for the groupjoin extension (fused join + group-by, the operator
// the paper's system uses for TPC-H Q13).
#include <gtest/gtest.h>

#include <map>

#include "join/group_join.h"
#include "tests/test_util.h"
#include "tpch/gen.h"
#include "util/rng.h"

namespace pjoin {
namespace {

struct GroupJoinRun {
  RowLayout build_layout = MakeBuild();
  RowLayout probe_layout = MakeProbe();
  RowLayout out_layout = MakeOut();

  static RowLayout MakeBuild() {
    return RowLayout({{"g_key", DataType::kInt64, 8, 0},
                      {"g_tag", DataType::kInt64, 8, 0}});
  }
  static RowLayout MakeProbe() {
    return RowLayout({{"v_key", DataType::kInt64, 8, 0},
                      {"v_val", DataType::kInt64, 8, 0}});
  }
  static RowLayout MakeOut() {
    return RowLayout({{"g_key", DataType::kInt64, 8, 0},
                      {"g_tag", DataType::kInt64, 8, 0},
                      {"cnt", DataType::kInt64, 8, 0},
                      {"sv", DataType::kInt64, 8, 0}});
  }

  // Runs groupjoin(build ⟕⋉γ probe) and returns sorted output rows.
  IntRows Run(const IntRows& build, const IntRows& probe, int threads) {
    GroupJoin join(&build_layout, {0}, &probe_layout, {0},
                   {AggDef::CountStar("cnt"), AggDef::Sum("v_val", "sv")},
                   &out_layout);
    GroupJoinBuildSink build_sink(&join);
    GroupJoinProbeSink probe_sink(&join);
    GroupJoinScanSource scan(&join);
    IntRowsSource build_src(&build_layout, &build);
    IntRowsSource probe_src(&probe_layout, &probe);
    IntCollectSink sink(&out_layout);

    ThreadPool pool(threads);
    ExecContext exec(&pool);
    Pipeline bp, pp, sp;
    bp.set_source(&build_src);
    bp.AddOperator(&build_sink);
    bp.Run(exec);
    pp.set_source(&probe_src);
    pp.AddOperator(&probe_sink);
    pp.Run(exec);
    sp.set_source(&scan);
    sp.AddOperator(&sink);
    sp.Run(exec);
    return sink.SortedRows();
  }
};

IntRows ReferenceGroupJoin(const IntRows& build, const IntRows& probe) {
  IntRows out;
  for (const auto& b : build) {
    int64_t count = 0, sum = 0;
    for (const auto& p : probe) {
      if (p[0] == b[0]) {
        ++count;
        sum += p[1];
      }
    }
    out.push_back({b[0], b[1], count, sum});
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(GroupJoin, MatchesReferenceIncludingEmptyGroups) {
  Rng rng(55);
  IntRows build, probe;
  for (int64_t g = 0; g < 300; ++g) build.push_back({g, g * 7});
  for (int i = 0; i < 20000; ++i) {
    // ~25% of probe keys miss; many groups stay empty.
    probe.push_back({static_cast<int64_t>(rng.Below(400)),
                     static_cast<int64_t>(rng.Below(100))});
  }
  GroupJoinRun runner;
  for (int threads : {1, 4}) {
    EXPECT_EQ(runner.Run(build, probe, threads),
              ReferenceGroupJoin(build, probe))
        << threads;
  }
}

TEST(GroupJoin, EmptyProbeYieldsZeroAggregates) {
  IntRows build{{1, 10}, {2, 20}};
  IntRows probe;
  GroupJoinRun runner;
  IntRows result = runner.Run(build, probe, 2);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0], (std::vector<int64_t>{1, 10, 0, 0}));
  EXPECT_EQ(result[1], (std::vector<int64_t>{2, 20, 0, 0}));
}

TEST(GroupJoin, DuplicateBuildKeysEachFormAGroup) {
  IntRows build{{5, 1}, {5, 2}};
  IntRows probe{{5, 100}, {5, 1}};
  GroupJoinRun runner;
  IntRows result = runner.Run(build, probe, 1);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0], (std::vector<int64_t>{5, 1, 2, 101}));
  EXPECT_EQ(result[1], (std::vector<int64_t>{5, 2, 2, 101}));
}

// Q13 customer-distribution shape on generated TPC-H data: groupjoin of
// customers with their orders, then a count-of-counts — validated against
// an independently computed reference.
TEST(GroupJoin, TpchQ13Shape) {
  auto db = GenerateTpch(0.01);
  RowLayout build_layout({{"c_custkey", DataType::kInt64, 8, 0}});
  RowLayout probe_layout({{"o_custkey", DataType::kInt64, 8, 0}});
  RowLayout out_layout({{"c_custkey", DataType::kInt64, 8, 0},
                        {"c_count", DataType::kInt64, 8, 0}});
  GroupJoin join(&build_layout, {0}, &probe_layout, {0},
                 {AggDef::CountStar("c_count")}, &out_layout);

  // Feed base tables through IntRows for brevity.
  IntRows customers, orders;
  for (uint64_t r = 0; r < db->customer.num_rows(); ++r) {
    customers.push_back({db->customer.column(0).GetInt64(r)});
  }
  for (uint64_t r = 0; r < db->orders.num_rows(); ++r) {
    orders.push_back({db->orders.column(1).GetInt64(r)});
  }
  IntRowsSource build_src(&build_layout, &customers);
  IntRowsSource probe_src(&probe_layout, &orders);
  GroupJoinBuildSink build_sink(&join);
  GroupJoinProbeSink probe_sink(&join);
  GroupJoinScanSource scan(&join);
  IntCollectSink sink(&out_layout);
  ThreadPool pool(2);
  ExecContext exec(&pool);
  Pipeline bp, pp, sp;
  bp.set_source(&build_src);
  bp.AddOperator(&build_sink);
  bp.Run(exec);
  pp.set_source(&probe_src);
  pp.AddOperator(&probe_sink);
  pp.Run(exec);
  sp.set_source(&scan);
  sp.AddOperator(&sink);
  sp.Run(exec);

  // Reference: orders per customer.
  std::map<int64_t, int64_t> per_customer;
  for (const auto& o : orders) per_customer[o[0]]++;
  IntRows result = sink.SortedRows();
  ASSERT_EQ(result.size(), customers.size());
  int64_t customers_without_orders = 0;
  for (const auto& row : result) {
    auto it = per_customer.find(row[0]);
    int64_t expected = it == per_customer.end() ? 0 : it->second;
    ASSERT_EQ(row[1], expected) << "custkey " << row[0];
    if (expected == 0) ++customers_without_orders;
  }
  // The spec's mod-3 rule leaves about one third of customers orderless.
  EXPECT_NEAR(static_cast<double>(customers_without_orders) / result.size(),
              1.0 / 3.0, 0.05);
}

}  // namespace
}  // namespace pjoin
