// Tests for hash aggregation: all aggregate functions, group-key types,
// merging across workers, and empty-input semantics.
#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/plan.h"
#include "util/rng.h"

namespace pjoin {
namespace {

Table MakeTable() {
  Table t("t", Schema({{"g", DataType::kInt64, 0},
                       {"v", DataType::kInt64, 0},
                       {"f", DataType::kFloat64, 0},
                       {"s", DataType::kChar, 4},
                       {"d", DataType::kDate, 0}}));
  auto add = [&](int64_t g, int64_t v, double f, const std::string& s,
                 int32_t d) {
    t.column(0).AppendInt64(g);
    t.column(1).AppendInt64(v);
    t.column(2).AppendFloat64(f);
    t.column(3).AppendString(s);
    t.column(4).AppendInt32(d);
    t.FinishRow();
  };
  add(1, 10, 1.5, "aa", MakeDate(1995, 1, 1));
  add(1, 20, 2.5, "aa", MakeDate(1995, 1, 2));
  add(2, -5, 0.5, "bb", MakeDate(1996, 1, 1));
  add(2, 15, -0.5, "bb", MakeDate(1996, 1, 2));
  add(2, 0, 10.0, "cc", MakeDate(1997, 1, 1));
  return t;
}

TEST(HashAgg, AllAggregateOps) {
  Table t = MakeTable();
  auto plan = Aggregate(ScanTable(&t), {"g"},
                        {AggDef::Sum("v", "sv"), AggDef::Sum("f", "sf"),
                         AggDef::Count("v", "cnt"), AggDef::Min("v", "mn"),
                         AggDef::Max("v", "mx"), AggDef::Avg("f", "avg"),
                         AggDef::CountStar("star")});
  QueryResult r = ExecuteQuery(*plan, ExecOptions{});
  ASSERT_EQ(r.num_rows(), 2u);
  // Group g=1 (sorted first).
  EXPECT_EQ(std::get<int64_t>(r.rows[0][0]), 1);
  EXPECT_EQ(std::get<int64_t>(r.rows[0][1]), 30);       // sum v
  EXPECT_DOUBLE_EQ(std::get<double>(r.rows[0][2]), 4.0);  // sum f
  EXPECT_EQ(std::get<int64_t>(r.rows[0][3]), 2);        // count
  EXPECT_DOUBLE_EQ(std::get<double>(r.rows[0][4]), 10.0);  // min
  EXPECT_DOUBLE_EQ(std::get<double>(r.rows[0][5]), 20.0);  // max
  EXPECT_DOUBLE_EQ(std::get<double>(r.rows[0][6]), 2.0);   // avg f
  EXPECT_EQ(std::get<int64_t>(r.rows[0][7]), 2);        // count(*)
  // Group g=2.
  EXPECT_EQ(std::get<int64_t>(r.rows[1][1]), 10);
  EXPECT_DOUBLE_EQ(std::get<double>(r.rows[1][4]), -5.0);
}

TEST(HashAgg, CharAndDateGroupKeys) {
  Table t = MakeTable();
  auto by_str = Aggregate(ScanTable(&t), {"s"}, {AggDef::CountStar("n")});
  QueryResult r1 = ExecuteQuery(*by_str, ExecOptions{});
  ASSERT_EQ(r1.num_rows(), 3u);
  EXPECT_EQ(std::get<std::string>(r1.rows[0][0]), "aa");  // trimmed

  auto by_date = Aggregate(ScanTable(&t), {"d"}, {AggDef::CountStar("n")});
  QueryResult r2 = ExecuteQuery(*by_date, ExecOptions{});
  EXPECT_EQ(r2.num_rows(), 5u);  // all dates distinct
}

TEST(HashAgg, CompositeGroupKeys) {
  Table t = MakeTable();
  auto plan =
      Aggregate(ScanTable(&t), {"g", "s"}, {AggDef::CountStar("n")});
  QueryResult r = ExecuteQuery(*plan, ExecOptions{});
  EXPECT_EQ(r.num_rows(), 3u);  // (1,aa), (2,bb), (2,cc)
}

TEST(HashAgg, ScalarAggregateOnEmptyInput) {
  Table t = MakeTable();
  auto plan = Aggregate(ScanTable(&t, {ScanPredicate::GtI("v", 1000)}), {},
                        {AggDef::CountStar("n"), AggDef::Sum("v", "sv")});
  QueryResult r = ExecuteQuery(*plan, ExecOptions{});
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(std::get<int64_t>(r.rows[0][0]), 0);
  EXPECT_EQ(std::get<int64_t>(r.rows[0][1]), 0);
}

TEST(HashAgg, GroupedAggregateOnEmptyInputYieldsNoRows) {
  Table t = MakeTable();
  auto plan = Aggregate(ScanTable(&t, {ScanPredicate::GtI("v", 1000)}), {"g"},
                        {AggDef::CountStar("n")});
  QueryResult r = ExecuteQuery(*plan, ExecOptions{});
  EXPECT_EQ(r.num_rows(), 0u);
}

TEST(HashAgg, ParallelMergeMatchesSingleThread) {
  // Large random input aggregated with 1 and 4 workers must agree exactly
  // for integer aggregates.
  Table t("big", Schema({{"g", DataType::kInt64, 0},
                         {"v", DataType::kInt64, 0}}));
  Rng rng(3);
  for (int i = 0; i < 300000; ++i) {
    t.column(0).AppendInt64(static_cast<int64_t>(rng.Below(100)));
    t.column(1).AppendInt64(static_cast<int64_t>(rng.Below(1000)));
    t.FinishRow();
  }
  auto make_plan = [&] {
    return Aggregate(ScanTable(&t), {"g"},
                     {AggDef::Sum("v", "sv"), AggDef::CountStar("n"),
                      AggDef::Min("v", "mn"), AggDef::Max("v", "mx")});
  };
  ExecOptions one;
  one.num_threads = 1;
  ExecOptions four;
  four.num_threads = 4;
  QueryResult r1 = ExecuteQuery(*make_plan(), one);
  QueryResult r4 = ExecuteQuery(*make_plan(), four);
  EXPECT_EQ(r1.num_rows(), 100u);
  EXPECT_TRUE(r1.ApproxEquals(r4, 0.0));  // exact: integer aggregates
}

}  // namespace
}  // namespace pjoin
