// Tests for the global chaining hash table and the robin-hood table.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "exec/thread_pool.h"
#include "hash_table/chaining_ht.h"
#include "hash_table/robin_hood.h"
#include "util/hash.h"
#include "util/rng.h"

namespace pjoin {
namespace {

// ---- ChainingHashTable ----------------------------------------------------

// Row format for these tests: a single int64 key.
void MaterializeKeys(ChainingHashTable& ht, const std::vector<int64_t>& keys,
                     int threads) {
  for (size_t i = 0; i < keys.size(); ++i) {
    int64_t k = keys[i];
    ht.MaterializeEntry(static_cast<int>(i % threads), HashInt64(k),
                        reinterpret_cast<const std::byte*>(&k), 8);
  }
}

int64_t EntryKey(const ChainingHashTable& ht, const std::byte* entry) {
  int64_t k;
  std::memcpy(&k, ht.EntryRow(entry), 8);
  return k;
}

// Walks the chain for `key` counting exact matches.
int CountMatches(const ChainingHashTable& ht, int64_t key) {
  uint64_t hash = HashInt64(key);
  int found = 0;
  for (const std::byte* e = ht.ChainHead(hash); e != nullptr;
       e = ChainingHashTable::EntryNext(e)) {
    if (ChainingHashTable::EntryHash(e) == hash && EntryKey(ht, e) == key) {
      ++found;
    }
  }
  return found;
}

TEST(ChainingHT, FindsAllInsertedKeys) {
  ChainingHashTable ht(8, /*track_matches=*/false);
  std::vector<int64_t> keys;
  for (int64_t k = 0; k < 5000; ++k) keys.push_back(k * 3);
  ThreadPool pool(4);
  MaterializeKeys(ht, keys, 4);
  ht.Build(pool);
  EXPECT_EQ(ht.num_entries(), 5000u);
  for (int64_t k : keys) EXPECT_EQ(CountMatches(ht, k), 1) << k;
}

TEST(ChainingHT, AbsentKeysNotFound) {
  ChainingHashTable ht(8, false);
  std::vector<int64_t> keys;
  for (int64_t k = 0; k < 1000; ++k) keys.push_back(k * 2);  // evens only
  ThreadPool pool(2);
  MaterializeKeys(ht, keys, 2);
  ht.Build(pool);
  for (int64_t k = 1; k < 2000; k += 2) EXPECT_EQ(CountMatches(ht, k), 0);
}

TEST(ChainingHT, DuplicateKeysAllRetained) {
  ChainingHashTable ht(8, false);
  std::vector<int64_t> keys;
  for (int rep = 0; rep < 7; ++rep) {
    for (int64_t k = 0; k < 100; ++k) keys.push_back(k);
  }
  ThreadPool pool(3);
  MaterializeKeys(ht, keys, 3);
  ht.Build(pool);
  for (int64_t k = 0; k < 100; ++k) EXPECT_EQ(CountMatches(ht, k), 7);
}

TEST(ChainingHT, TagRejectsMostAbsentKeys) {
  // The tagged-pointer reducer must prune a large share of absent keys
  // before any chain walk.
  ChainingHashTable ht(8, false);
  std::vector<int64_t> keys;
  for (int64_t k = 0; k < 64; ++k) keys.push_back(k);  // sparse table
  ThreadPool pool(1);
  MaterializeKeys(ht, keys, 1);
  ht.Build(pool);
  int rejected_by_tag = 0;
  const int kProbes = 10000;
  for (int64_t k = 0; k < kProbes; ++k) {
    if (ht.ChainHead(HashInt64(k + 1'000'000)) == nullptr) ++rejected_by_tag;
  }
  EXPECT_GT(rejected_by_tag, kProbes * 9 / 10);
}

TEST(ChainingHT, EmptyBuild) {
  ChainingHashTable ht(8, false);
  ThreadPool pool(2);
  ht.Build(pool);
  EXPECT_EQ(ht.num_entries(), 0u);
  EXPECT_EQ(CountMatches(ht, 42), 0);
}

TEST(ChainingHT, MatchedFlags) {
  ChainingHashTable ht(8, /*track_matches=*/true);
  std::vector<int64_t> keys{1, 2, 3};
  ThreadPool pool(1);
  MaterializeKeys(ht, keys, 1);
  ht.Build(pool);
  // Mark key 2 only.
  uint64_t hash = HashInt64(2);
  for (const std::byte* e = ht.ChainHead(hash); e != nullptr;
       e = ChainingHashTable::EntryNext(e)) {
    if (ChainingHashTable::EntryHash(e) == hash) ht.MarkMatched(e);
  }
  std::map<int64_t, bool> matched;
  ht.ForEachEntry([&](const std::byte* e) {
    matched[EntryKey(ht, e)] = ChainingHashTable::IsMatched(e);
  });
  EXPECT_FALSE(matched[1]);
  EXPECT_TRUE(matched[2]);
  EXPECT_FALSE(matched[3]);
}

TEST(ChainingHT, MaterializedBytesAccounting) {
  ChainingHashTable ht(16, false);
  int64_t row[2] = {1, 2};
  ht.MaterializeEntry(0, HashInt64(1), reinterpret_cast<std::byte*>(row), 16);
  EXPECT_EQ(ht.MaterializedBytes(), ht.entry_stride());
  EXPECT_EQ(ht.entry_stride(), 16u + 16u);
}

TEST(ChainingHT, ParallelBuildConsistent) {
  // Build the same key set with different thread counts; probe results must
  // be identical.
  std::vector<int64_t> keys;
  Rng rng(9);
  for (int i = 0; i < 20000; ++i) {
    keys.push_back(static_cast<int64_t>(rng.Below(5000)));
  }
  for (int threads : {1, 4}) {
    ChainingHashTable ht(8, false);
    ThreadPool pool(threads);
    MaterializeKeys(ht, keys, threads);
    ht.Build(pool);
    std::map<int64_t, int> expected;
    for (int64_t k : keys) expected[k]++;
    for (const auto& [k, n] : expected) {
      ASSERT_EQ(CountMatches(ht, k), n) << "threads=" << threads;
    }
  }
}

// ---- RobinHoodTable ---------------------------------------------------------

TEST(RobinHood, FindsAllKeys) {
  RobinHoodTable table;
  std::vector<int64_t> keys(2000);
  for (int64_t i = 0; i < 2000; ++i) keys[i] = i * 7;
  table.Reset(keys.size());
  for (int64_t& k : keys) {
    table.Insert(HashInt64(k), reinterpret_cast<const std::byte*>(&k));
  }
  EXPECT_EQ(table.size(), 2000u);
  for (int64_t& k : keys) {
    int found = 0;
    table.ForEachMatch(HashInt64(k), [&](const std::byte* t, uint64_t) {
      int64_t v;
      std::memcpy(&v, t, 8);
      if (v == k) ++found;
    });
    EXPECT_EQ(found, 1) << k;
  }
}

TEST(RobinHood, AbsentKeysReturnNothing) {
  RobinHoodTable table;
  std::vector<int64_t> keys{10, 20, 30};
  table.Reset(keys.size());
  for (int64_t& k : keys) {
    table.Insert(HashInt64(k), reinterpret_cast<const std::byte*>(&k));
  }
  int found = 0;
  table.ForEachMatch(HashInt64(999), [&](const std::byte*, uint64_t) {
    ++found;
  });
  EXPECT_EQ(found, 0);
}

TEST(RobinHood, DuplicateHashesAllVisited) {
  RobinHoodTable table;
  std::vector<int64_t> keys{5, 5, 5, 5};
  table.Reset(keys.size());
  for (int64_t& k : keys) {
    table.Insert(HashInt64(k), reinterpret_cast<const std::byte*>(&k));
  }
  int found = 0;
  table.ForEachMatch(HashInt64(5), [&](const std::byte*, uint64_t) {
    ++found;
  });
  EXPECT_EQ(found, 4);
}

TEST(RobinHood, ResetReusesMemory) {
  RobinHoodTable table;
  table.Reset(10000);
  uint64_t cap1 = table.capacity();
  int64_t k = 3;
  table.Insert(HashInt64(k), reinterpret_cast<const std::byte*>(&k));
  table.Reset(100);  // smaller: capacity shrinks logically, memory reused
  EXPECT_EQ(table.size(), 0u);
  int found = 0;
  table.ForEachMatch(HashInt64(3), [&](const std::byte*, uint64_t) {
    ++found;
  });
  EXPECT_EQ(found, 0);
  table.Reset(10000);
  EXPECT_EQ(table.capacity(), cap1);
}

TEST(RobinHood, StressRandomKeys) {
  RobinHoodTable table;
  Rng rng(21);
  std::vector<int64_t> keys(50000);
  for (auto& k : keys) k = static_cast<int64_t>(rng.Below(30000));
  table.Reset(keys.size());
  std::map<int64_t, int> expected;
  for (int64_t& k : keys) {
    table.Insert(HashInt64(k), reinterpret_cast<const std::byte*>(&k));
    expected[k]++;
  }
  for (const auto& [k, n] : expected) {
    int found = 0;
    table.ForEachMatch(HashInt64(k), [&](const std::byte* t, uint64_t) {
      int64_t v;
      std::memcpy(&v, t, 8);
      if (v == k) ++found;
    });
    ASSERT_EQ(found, n) << k;
  }
}

}  // namespace
}  // namespace pjoin
