// Cross-cutting integration tests: mixed join kinds and strategies in one
// plan, repeated execution, thread-count invariance, and memory accounting.
#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/plan.h"
#include "tpch/gen.h"
#include "tpch/queries.h"
#include "util/rng.h"

namespace pjoin {
namespace {

struct Warehouse {
  Table items{"items", Schema({{"i_id", DataType::kInt64, 0},
                               {"i_cat", DataType::kInt64, 0}})};
  Table stock{"stock", Schema({{"s_item", DataType::kInt64, 0},
                               {"s_qty", DataType::kInt64, 0}})};
  Table sales{"sales", Schema({{"x_item", DataType::kInt64, 0},
                               {"x_price", DataType::kFloat64, 0}})};

  Warehouse() {
    Rng rng(77);
    for (int64_t i = 0; i < 1000; ++i) {
      items.column(0).AppendInt64(i);
      items.column(1).AppendInt64(i % 13);
      items.FinishRow();
    }
    for (int64_t i = 0; i < 700; ++i) {  // 30% of items have no stock row
      stock.column(0).AppendInt64(static_cast<int64_t>(rng.Below(1000)));
      stock.column(1).AppendInt64(static_cast<int64_t>(rng.Below(50)));
      stock.FinishRow();
    }
    for (int64_t i = 0; i < 80000; ++i) {
      sales.column(0).AppendInt64(static_cast<int64_t>(rng.Below(1500)));
      sales.column(1).AppendFloat64(static_cast<double>(rng.Below(100)));
      sales.FinishRow();
    }
  }
};

// items with stock (semi) joined against sales (inner), grouped by category.
std::unique_ptr<PlanNode> MixedKindPlan(const Warehouse& w) {
  auto stocked_items =
      Join(ScanTable(&w.stock), ScanTable(&w.items), {{"s_item", "i_id"}},
           JoinKind::kProbeSemi);
  auto with_sales = Join(std::move(stocked_items), ScanTable(&w.sales),
                         {{"i_id", "x_item"}});
  return Aggregate(std::move(with_sales), {"i_cat"},
                   {AggDef::CountStar("n"), AggDef::Sum("x_price", "rev")});
}

TEST(Integration, MixedJoinKindsAcrossStrategies) {
  Warehouse w;
  QueryResult reference;
  bool first = true;
  for (JoinStrategy s : {JoinStrategy::kBHJ, JoinStrategy::kRJ,
                         JoinStrategy::kBRJ, JoinStrategy::kBRJAdaptive}) {
    ExecOptions options;
    options.join_strategy = s;
    QueryResult result = ExecuteQuery(*MixedKindPlan(w), options);
    if (first) {
      reference = result;
      first = false;
      EXPECT_EQ(result.num_rows(), 13u);
    } else {
      ASSERT_TRUE(result.ApproxEquals(reference)) << JoinStrategyName(s);
    }
  }
}

TEST(Integration, MixedStrategiesWithinOnePlan) {
  Warehouse w;
  ExecOptions base;
  base.join_strategy = JoinStrategy::kBHJ;
  QueryResult reference = ExecuteQuery(*MixedKindPlan(w), base);
  // Semi join as BRJ, inner join as BHJ — and vice versa.
  for (auto [j0, j1] : {std::pair{JoinStrategy::kBRJ, JoinStrategy::kBHJ},
                        std::pair{JoinStrategy::kBHJ, JoinStrategy::kRJ}}) {
    ExecOptions mixed;
    mixed.join_overrides[0] = j0;
    mixed.join_overrides[1] = j1;
    QueryResult result = ExecuteQuery(*MixedKindPlan(w), mixed);
    ASSERT_TRUE(result.ApproxEquals(reference));
  }
}

TEST(Integration, RepeatedExecutionIsStable) {
  Warehouse w;
  ThreadPool pool(2);
  ExecOptions options;
  options.join_strategy = JoinStrategy::kBRJ;
  QueryResult first = ExecuteQuery(*MixedKindPlan(w), options, nullptr, &pool);
  for (int i = 0; i < 5; ++i) {
    QueryResult again =
        ExecuteQuery(*MixedKindPlan(w), options, nullptr, &pool);
    ASSERT_TRUE(again.ApproxEquals(first)) << "iteration " << i;
  }
}

TEST(Integration, ThreadCountInvariance) {
  auto db = GenerateTpch(0.01);
  const TpchQuery& q9 = GetTpchQuery(9);
  QueryResult reference;
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    ExecOptions options;
    options.join_strategy = JoinStrategy::kRJ;
    options.num_threads = threads;
    QueryResult result = q9.run(*db, options, nullptr, &pool);
    if (threads == 1) {
      reference = result;
    } else {
      ASSERT_TRUE(result.ApproxEquals(reference, 1e-6))
          << threads << " threads";
    }
  }
}

TEST(Integration, PartitionBytesReflectMaterialization) {
  Warehouse w;
  // BHJ never partitions; RJ materializes both sides of both joins.
  ExecOptions bhj;
  bhj.join_strategy = JoinStrategy::kBHJ;
  ExecOptions rj;
  rj.join_strategy = JoinStrategy::kRJ;
  QueryStats bhj_stats, rj_stats;
  ExecuteQuery(*MixedKindPlan(w), bhj, &bhj_stats);
  ExecuteQuery(*MixedKindPlan(w), rj, &rj_stats);
  EXPECT_EQ(bhj_stats.partition_bytes, 0u);
  // At least (sales rows x padded tuple) of partition output.
  EXPECT_GT(rj_stats.partition_bytes, 80000u * 16u);
}

TEST(Integration, BloomDroppedOnlyWhenFilterApplies) {
  Warehouse w;
  ExecOptions brj;
  brj.join_strategy = JoinStrategy::kBRJ;
  QueryStats stats;
  ExecuteQuery(*MixedKindPlan(w), brj, &stats);
  // sales reference items 0..1499 but only ~<=1000 exist and fewer are
  // stocked: the probe-side filter of the inner join must drop plenty.
  EXPECT_GT(stats.bloom_dropped, 20000u);
}

}  // namespace
}  // namespace pjoin
