// Differential join testing: seeded random workloads sweeping selectivity,
// duplicate factor, payload width, key skew, and build:probe ratio, each run
// through every physical strategy (BHJ, RJ, BRJ) and every join kind, and
// compared row-for-row against the nested-loop reference. This is the
// drop-in-replacement claim of the paper checked in bulk: whatever the data
// shape, partitioned and non-partitioned joins must be indistinguishable in
// output.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exec/pipeline.h"
#include "exec/thread_pool.h"
#include "join/hash_join.h"
#include "join/join_types.h"
#include "join/radix_join.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace pjoin {
namespace {

// One data shape. Key universe is build_rows / dup_factor keys; the probe
// side draws from universe_mult times that range, so roughly 1/universe_mult
// of probe tuples find partners. theta > 0 makes probe keys Zipf-skewed.
struct DataConfig {
  const char* name;
  uint64_t build_rows;
  uint64_t probe_rows;
  uint64_t dup_factor;    // average duplicates per build key
  uint64_t universe_mult; // probe universe / build universe ≈ 1/selectivity
  double theta;           // Zipf skew of probe keys (0 = uniform)
  int build_cols;         // key + payload columns on the build side
  int probe_cols;
};

// One-dimension-at-a-time sweep around a common base shape.
const DataConfig kConfigs[] = {
    // base
    {"base", 1000, 4000, 2, 2, 0.0, 2, 2},
    // selectivity: every probe key matches ... almost none do
    {"sel_all", 1000, 4000, 2, 1, 0.0, 2, 2},
    {"sel_quarter", 1000, 4000, 2, 4, 0.0, 2, 2},
    {"sel_tenth", 1000, 4000, 2, 10, 0.0, 2, 2},
    {"sel_rare", 1000, 4000, 2, 50, 0.0, 2, 2},
    // duplicate factor: unique keys ... heavy multi-matches
    {"dup_unique", 1000, 4000, 1, 2, 0.0, 2, 2},
    {"dup_4", 1000, 4000, 4, 2, 0.0, 2, 2},
    {"dup_16", 1000, 4000, 16, 2, 0.0, 2, 2},
    // payload width (tuple size drives partitioning bandwidth)
    {"pay_narrow", 1000, 4000, 2, 2, 0.0, 1, 1},
    {"pay_build_wide", 1000, 4000, 2, 2, 0.0, 3, 2},
    {"pay_probe_wide", 1000, 4000, 2, 2, 0.0, 2, 4},
    // probe-key skew (the Zipf workloads of Section 5.2.3)
    {"zipf_mild", 1000, 4000, 2, 2, 0.5, 2, 2},
    {"zipf_medium", 1000, 4000, 2, 2, 0.8, 2, 2},
    {"zipf_heavy", 1000, 4000, 2, 2, 1.2, 2, 2},
    // build:probe ratio (Figure 7's sweep)
    {"ratio_1_1", 2000, 2000, 2, 2, 0.0, 2, 2},
    {"ratio_1_8", 500, 4000, 2, 2, 0.0, 2, 2},
    {"ratio_1_32", 250, 8000, 2, 2, 0.0, 2, 2},
};

const JoinKind kKinds[] = {
    JoinKind::kInner,     JoinKind::kProbeSemi, JoinKind::kProbeAnti,
    JoinKind::kBuildSemi, JoinKind::kBuildAnti, JoinKind::kLeftOuter,
    JoinKind::kRightOuter, JoinKind::kMark,
};

// The issue's floor: at least 100 distinct seeded workloads.
static_assert(sizeof(kConfigs) / sizeof(kConfigs[0]) *
                      sizeof(kKinds) / sizeof(kKinds[0]) >=
                  100,
              "differential sweep must cover at least 100 workloads");

IntRows MakeBuild(const DataConfig& cfg, uint64_t seed) {
  const uint64_t universe =
      std::max<uint64_t>(1, cfg.build_rows / cfg.dup_factor);
  Rng rng(seed);
  IntRows out;
  out.reserve(cfg.build_rows);
  for (uint64_t i = 0; i < cfg.build_rows; ++i) {
    std::vector<int64_t> row(cfg.build_cols);
    row[0] = static_cast<int64_t>(rng.Below(universe));
    for (int c = 1; c < cfg.build_cols; ++c) {
      row[c] = static_cast<int64_t>(rng.Next() & 0xFFFF);
    }
    out.push_back(std::move(row));
  }
  return out;
}

IntRows MakeProbe(const DataConfig& cfg, uint64_t seed) {
  const uint64_t build_universe =
      std::max<uint64_t>(1, cfg.build_rows / cfg.dup_factor);
  const uint64_t universe = build_universe * cfg.universe_mult;
  Rng rng(seed);
  ZipfGenerator zipf(universe, cfg.theta);
  IntRows out;
  out.reserve(cfg.probe_rows);
  for (uint64_t i = 0; i < cfg.probe_rows; ++i) {
    std::vector<int64_t> row(cfg.probe_cols);
    row[0] = cfg.theta > 0
                 ? static_cast<int64_t>(zipf.Next(rng) - 1)
                 : static_cast<int64_t>(rng.Below(universe));
    for (int c = 1; c < cfg.probe_cols; ++c) {
      row[c] = static_cast<int64_t>(rng.Next() & 0xFFFF);
    }
    out.push_back(std::move(row));
  }
  return out;
}

RowLayout MakeLayout(const std::string& prefix, int cols) {
  std::vector<RowField> fields;
  for (int i = 0; i < cols; ++i) {
    fields.push_back(
        RowField{prefix + std::to_string(i), DataType::kInt64, 8, 0});
  }
  return RowLayout(std::move(fields));
}

RowLayout MakeOutputLayout(JoinKind kind, int build_cols, int probe_cols) {
  std::vector<RowField> fields;
  for (int i = 0; i < build_cols; ++i) {
    fields.push_back(RowField{"b" + std::to_string(i), DataType::kInt64, 8, 0});
  }
  for (int i = 0; i < probe_cols; ++i) {
    fields.push_back(RowField{"p" + std::to_string(i), DataType::kInt64, 8, 0});
  }
  if (kind == JoinKind::kMark) {
    fields.push_back(RowField{"mark", DataType::kInt64, 8, 0});
  }
  return RowLayout(std::move(fields));
}

// Runs one join through real pipelines (the join_test.cc harness generalized
// to arbitrary column counts) and returns sorted output rows.
IntRows RunJoin(JoinStrategy strategy, JoinKind kind, const IntRows& build,
                const IntRows& probe, int build_cols, int probe_cols,
                int threads) {
  RowLayout build_layout = MakeLayout("b", build_cols);
  RowLayout probe_layout = MakeLayout("p", probe_cols);
  RowLayout out_layout = MakeOutputLayout(kind, build_cols, probe_cols);

  JoinProjection projection;
  projection.output = &out_layout;
  projection.build = &build_layout;
  projection.probe = &probe_layout;
  for (int i = 0; i < build_cols; ++i) projection.from_build.push_back({i, i});
  for (int i = 0; i < probe_cols; ++i) {
    projection.from_probe.push_back({build_cols + i, i});
  }
  if (kind == JoinKind::kMark) {
    projection.mark_field = build_cols + probe_cols;
  }

  ThreadPool pool(threads);
  ExecContext exec(&pool);
  IntRowsSource build_src(&build_layout, &build);
  IntRowsSource probe_src(&probe_layout, &probe);
  IntCollectSink sink(&out_layout);

  if (strategy == JoinStrategy::kBHJ) {
    HashJoin join(kind, &build_layout, {0}, &probe_layout, {0}, projection);
    HashJoinBuildSink build_sink(&join);
    HashJoinProbe probe_op(&join);
    Pipeline build_pipe;
    build_pipe.set_source(&build_src);
    build_pipe.AddOperator(&build_sink);
    build_pipe.Run(exec);
    Pipeline probe_pipe;
    probe_pipe.set_source(&probe_src);
    probe_pipe.AddOperator(&probe_op);
    probe_pipe.AddOperator(&sink);
    probe_pipe.Run(exec);
    if (EmitsBuildRows(kind)) {
      HashJoinBuildScanSource scan(&join);
      Pipeline scan_pipe;
      scan_pipe.set_source(&scan);
      scan_pipe.AddOperator(&sink);
      scan_pipe.Run(exec);
    }
  } else {
    RadixJoin::Options options;
    options.strategy = strategy;
    options.expected_build_tuples = build.size() | 1;
    options.num_threads = threads;
    RadixJoin join(kind, &build_layout, {0}, &probe_layout, {0}, projection,
                   options);
    RadixBuildSink build_sink(&join);
    RadixProbeSink probe_sink(&join);
    PartitionJoinSource join_src(&join);
    Pipeline build_pipe;
    build_pipe.set_source(&build_src);
    build_pipe.AddOperator(&build_sink);
    build_pipe.Run(exec);
    Pipeline probe_pipe;
    probe_pipe.set_source(&probe_src);
    probe_pipe.AddOperator(&probe_sink);
    probe_pipe.Run(exec);
    Pipeline join_pipe;
    join_pipe.set_source(&join_src);
    join_pipe.AddOperator(&sink);
    join_pipe.Run(exec);
  }
  return sink.SortedRows();
}

class JoinDifferentialTest : public ::testing::TestWithParam<JoinKind> {};

TEST_P(JoinDifferentialTest, AllStrategiesMatchReference) {
  const JoinKind kind = GetParam();
  const JoinStrategy strategies[] = {JoinStrategy::kBHJ, JoinStrategy::kRJ,
                                     JoinStrategy::kBRJ};
  uint64_t seed = 1000 + static_cast<uint64_t>(kind) * 131;
  size_t idx = 0;
  for (const DataConfig& cfg : kConfigs) {
    SCOPED_TRACE(std::string("config=") + cfg.name);
    IntRows build = MakeBuild(cfg, seed + idx * 2);
    IntRows probe = MakeProbe(cfg, seed + idx * 2 + 1);
    IntRows expected =
        ReferenceJoin(build, probe, 0, kind, cfg.build_cols, cfg.probe_cols);
    const int threads = 1 + static_cast<int>(idx % 3);
    for (JoinStrategy strategy : strategies) {
      SCOPED_TRACE(JoinStrategyName(strategy));
      IntRows actual = RunJoin(strategy, kind, build, probe, cfg.build_cols,
                               cfg.probe_cols, threads);
      ASSERT_EQ(actual.size(), expected.size());
      ASSERT_EQ(actual, expected);
    }
    ++idx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, JoinDifferentialTest, ::testing::ValuesIn(kKinds),
    [](const ::testing::TestParamInfo<JoinKind>& info) {
      std::string name = JoinKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace pjoin
