// Differential join testing: seeded random workloads sweeping selectivity,
// duplicate factor, payload width, key skew, and build:probe ratio, each run
// through every physical strategy (BHJ, RJ, BRJ) and every join kind, and
// compared row-for-row against the nested-loop reference. This is the
// drop-in-replacement claim of the paper checked in bulk: whatever the data
// shape, partitioned and non-partitioned joins must be indistinguishable in
// output.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exec/pipeline.h"
#include "exec/thread_pool.h"
#include "join/hash_join.h"
#include "join/join_types.h"
#include "join/radix_join.h"
#include "spill/memory_governor.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace pjoin {
namespace {

// One data shape. Key universe is build_rows / dup_factor keys; the probe
// side draws from universe_mult times that range, so roughly 1/universe_mult
// of probe tuples find partners. theta > 0 makes probe keys Zipf-skewed.
struct DataConfig {
  const char* name;
  uint64_t build_rows;
  uint64_t probe_rows;
  uint64_t dup_factor;    // average duplicates per build key
  uint64_t universe_mult; // probe universe / build universe ≈ 1/selectivity
  double theta;           // Zipf skew of probe keys (0 = uniform)
  int build_cols;         // key + payload columns on the build side
  int probe_cols;
};

// One-dimension-at-a-time sweep around a common base shape.
const DataConfig kConfigs[] = {
    // base
    {"base", 1000, 4000, 2, 2, 0.0, 2, 2},
    // selectivity: every probe key matches ... almost none do
    {"sel_all", 1000, 4000, 2, 1, 0.0, 2, 2},
    {"sel_quarter", 1000, 4000, 2, 4, 0.0, 2, 2},
    {"sel_tenth", 1000, 4000, 2, 10, 0.0, 2, 2},
    {"sel_rare", 1000, 4000, 2, 50, 0.0, 2, 2},
    // duplicate factor: unique keys ... heavy multi-matches
    {"dup_unique", 1000, 4000, 1, 2, 0.0, 2, 2},
    {"dup_4", 1000, 4000, 4, 2, 0.0, 2, 2},
    {"dup_16", 1000, 4000, 16, 2, 0.0, 2, 2},
    // payload width (tuple size drives partitioning bandwidth)
    {"pay_narrow", 1000, 4000, 2, 2, 0.0, 1, 1},
    {"pay_build_wide", 1000, 4000, 2, 2, 0.0, 3, 2},
    {"pay_probe_wide", 1000, 4000, 2, 2, 0.0, 2, 4},
    // probe-key skew (the Zipf workloads of Section 5.2.3)
    {"zipf_mild", 1000, 4000, 2, 2, 0.5, 2, 2},
    {"zipf_medium", 1000, 4000, 2, 2, 0.8, 2, 2},
    {"zipf_heavy", 1000, 4000, 2, 2, 1.2, 2, 2},
    // build:probe ratio (Figure 7's sweep)
    {"ratio_1_1", 2000, 2000, 2, 2, 0.0, 2, 2},
    {"ratio_1_8", 500, 4000, 2, 2, 0.0, 2, 2},
    {"ratio_1_32", 250, 8000, 2, 2, 0.0, 2, 2},
};

const JoinKind kKinds[] = {
    JoinKind::kInner,     JoinKind::kProbeSemi, JoinKind::kProbeAnti,
    JoinKind::kBuildSemi, JoinKind::kBuildAnti, JoinKind::kLeftOuter,
    JoinKind::kRightOuter, JoinKind::kMark,
};

// The issue's floor: at least 100 distinct seeded workloads.
static_assert(sizeof(kConfigs) / sizeof(kConfigs[0]) *
                      sizeof(kKinds) / sizeof(kKinds[0]) >=
                  100,
              "differential sweep must cover at least 100 workloads");

IntRows MakeBuild(const DataConfig& cfg, uint64_t seed) {
  const uint64_t universe =
      std::max<uint64_t>(1, cfg.build_rows / cfg.dup_factor);
  Rng rng(seed);
  IntRows out;
  out.reserve(cfg.build_rows);
  for (uint64_t i = 0; i < cfg.build_rows; ++i) {
    std::vector<int64_t> row(cfg.build_cols);
    row[0] = static_cast<int64_t>(rng.Below(universe));
    for (int c = 1; c < cfg.build_cols; ++c) {
      row[c] = static_cast<int64_t>(rng.Next() & 0xFFFF);
    }
    out.push_back(std::move(row));
  }
  return out;
}

IntRows MakeProbe(const DataConfig& cfg, uint64_t seed) {
  const uint64_t build_universe =
      std::max<uint64_t>(1, cfg.build_rows / cfg.dup_factor);
  const uint64_t universe = build_universe * cfg.universe_mult;
  Rng rng(seed);
  ZipfGenerator zipf(universe, cfg.theta);
  IntRows out;
  out.reserve(cfg.probe_rows);
  for (uint64_t i = 0; i < cfg.probe_rows; ++i) {
    std::vector<int64_t> row(cfg.probe_cols);
    row[0] = cfg.theta > 0
                 ? static_cast<int64_t>(zipf.Next(rng) - 1)
                 : static_cast<int64_t>(rng.Below(universe));
    for (int c = 1; c < cfg.probe_cols; ++c) {
      row[c] = static_cast<int64_t>(rng.Next() & 0xFFFF);
    }
    out.push_back(std::move(row));
  }
  return out;
}

RowLayout MakeLayout(const std::string& prefix, int cols) {
  std::vector<RowField> fields;
  for (int i = 0; i < cols; ++i) {
    fields.push_back(
        RowField{prefix + std::to_string(i), DataType::kInt64, 8, 0});
  }
  return RowLayout(std::move(fields));
}

RowLayout MakeOutputLayout(JoinKind kind, int build_cols, int probe_cols) {
  std::vector<RowField> fields;
  for (int i = 0; i < build_cols; ++i) {
    fields.push_back(RowField{"b" + std::to_string(i), DataType::kInt64, 8, 0});
  }
  for (int i = 0; i < probe_cols; ++i) {
    fields.push_back(RowField{"p" + std::to_string(i), DataType::kInt64, 8, 0});
  }
  if (kind == JoinKind::kMark) {
    fields.push_back(RowField{"mark", DataType::kInt64, 8, 0});
  }
  return RowLayout(std::move(fields));
}

// Runs one join through real pipelines (the join_test.cc harness generalized
// to arbitrary column counts) and returns sorted output rows. When
// `skew_defense` is set, the radix strategies run with the heavy-hitter
// bypass armed and an artificially tiny re-split threshold, so the
// dense-array join and the 16-way partition re-split both execute.
// `metrics_out`, when non-null, receives the radix join's metrics.
IntRows RunJoin(JoinStrategy strategy, JoinKind kind, const IntRows& build,
                const IntRows& probe, int build_cols, int probe_cols,
                int threads, bool skew_defense = false,
                JoinMetrics* metrics_out = nullptr) {
  RowLayout build_layout = MakeLayout("b", build_cols);
  RowLayout probe_layout = MakeLayout("p", probe_cols);
  RowLayout out_layout = MakeOutputLayout(kind, build_cols, probe_cols);

  JoinProjection projection;
  projection.output = &out_layout;
  projection.build = &build_layout;
  projection.probe = &probe_layout;
  for (int i = 0; i < build_cols; ++i) projection.from_build.push_back({i, i});
  for (int i = 0; i < probe_cols; ++i) {
    projection.from_probe.push_back({build_cols + i, i});
  }
  if (kind == JoinKind::kMark) {
    projection.mark_field = build_cols + probe_cols;
  }

  ThreadPool pool(threads);
  ExecContext exec(&pool);
  IntRowsSource build_src(&build_layout, &build);
  IntRowsSource probe_src(&probe_layout, &probe);
  IntCollectSink sink(&out_layout);

  if (strategy == JoinStrategy::kBHJ) {
    HashJoin join(kind, &build_layout, {0}, &probe_layout, {0}, projection);
    HashJoinBuildSink build_sink(&join);
    HashJoinProbe probe_op(&join);
    Pipeline build_pipe;
    build_pipe.set_source(&build_src);
    build_pipe.AddOperator(&build_sink);
    build_pipe.Run(exec);
    Pipeline probe_pipe;
    probe_pipe.set_source(&probe_src);
    probe_pipe.AddOperator(&probe_op);
    probe_pipe.AddOperator(&sink);
    probe_pipe.Run(exec);
    if (EmitsBuildRows(kind)) {
      HashJoinBuildScanSource scan(&join);
      Pipeline scan_pipe;
      scan_pipe.set_source(&scan);
      scan_pipe.AddOperator(&sink);
      scan_pipe.Run(exec);
    }
  } else {
    RadixJoin::Options options;
    options.strategy = strategy;
    options.expected_build_tuples = build.size() | 1;
    options.num_threads = threads;
    if (skew_defense) {
      options.skew_defense = true;
      options.heavy_hitter_share = 0.04;
      options.max_heavy_hitters = 8;
      options.resplit_partition_bytes = 1024;  // force the re-split path
    }
    RadixJoin join(kind, &build_layout, {0}, &probe_layout, {0}, projection,
                   options);
    RadixBuildSink build_sink(&join);
    RadixProbeSink probe_sink(&join);
    PartitionJoinSource join_src(&join);
    Pipeline build_pipe;
    build_pipe.set_source(&build_src);
    build_pipe.AddOperator(&build_sink);
    build_pipe.Run(exec);
    Pipeline probe_pipe;
    probe_pipe.set_source(&probe_src);
    probe_pipe.AddOperator(&probe_sink);
    probe_pipe.Run(exec);
    Pipeline join_pipe;
    join_pipe.set_source(&join_src);
    join_pipe.AddOperator(&sink);
    join_pipe.Run(exec);
    if (metrics_out != nullptr) *metrics_out = join.CollectMetrics();
  }
  return sink.SortedRows();
}

class JoinDifferentialTest : public ::testing::TestWithParam<JoinKind> {};

TEST_P(JoinDifferentialTest, AllStrategiesMatchReference) {
  const JoinKind kind = GetParam();
  const JoinStrategy strategies[] = {JoinStrategy::kBHJ, JoinStrategy::kRJ,
                                     JoinStrategy::kBRJ};
  uint64_t seed = 1000 + static_cast<uint64_t>(kind) * 131;
  size_t idx = 0;
  for (const DataConfig& cfg : kConfigs) {
    SCOPED_TRACE(std::string("config=") + cfg.name);
    IntRows build = MakeBuild(cfg, seed + idx * 2);
    IntRows probe = MakeProbe(cfg, seed + idx * 2 + 1);
    IntRows expected =
        ReferenceJoin(build, probe, 0, kind, cfg.build_cols, cfg.probe_cols);
    const int threads = 1 + static_cast<int>(idx % 3);
    for (JoinStrategy strategy : strategies) {
      SCOPED_TRACE(JoinStrategyName(strategy));
      IntRows actual = RunJoin(strategy, kind, build, probe, cfg.build_cols,
                               cfg.probe_cols, threads);
      ASSERT_EQ(actual.size(), expected.size());
      ASSERT_EQ(actual, expected);
    }
    ++idx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, JoinDifferentialTest, ::testing::ValuesIn(kKinds),
    [](const ::testing::TestParamInfo<JoinKind>& info) {
      std::string name = JoinKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---- Skewed slice: build-side Zipf and heavy-hitter workloads ------------
//
// The sweep above skews only the probe keys; here the *build* side is
// skewed, which is what breaks partitioned joins (one partition absorbs the
// hot key's entire chain). Every strategy — including the radix joins with
// the skew defense forced on, so heavy-hitter bypass, partition re-split,
// and the dense-array fallback all execute — must stay bit-identical to the
// nested-loop oracle. Run under ctest label `skew`.

struct SkewDataConfig {
  const char* name;
  uint64_t build_rows;
  uint64_t probe_rows;
  double build_theta;     // Zipf exponent of build keys (0 = heavy hitter)
  double heavy_fraction;  // single-key share when build_theta == 0
  uint64_t universe;      // key universe of the skewed build side
  double probe_theta;     // Zipf exponent of probe keys (0 = uniform)
  int build_cols;
  int probe_cols;
};

const SkewDataConfig kSkewConfigs[] = {
    // The ISSUE's Zipf ladder on the build side, s in {0.5, 1.0, 1.5}.
    {"build_zipf_05", 2000, 4000, 0.5, 0.0, 500, 0.0, 2, 2},
    {"build_zipf_10", 2000, 4000, 1.0, 0.0, 500, 0.0, 2, 2},
    {"build_zipf_15", 2000, 4000, 1.5, 0.0, 500, 0.0, 2, 2},
    // Single heavy hitter absorbing a fixed share of the build side.
    {"heavy_quarter", 2000, 4000, 0.0, 0.25, 500, 0.0, 2, 2},
    {"heavy_half", 2000, 4000, 0.0, 0.5, 500, 0.0, 2, 2},
    {"heavy_nine_tenths", 2000, 4000, 0.0, 0.9, 500, 0.0, 2, 2},
    // Correlated skew: both sides hammer the same hot keys.
    {"both_sides_zipf", 2000, 4000, 1.0, 0.0, 500, 1.0, 2, 2},
    // Wide payloads push per-partition bytes over the re-split threshold.
    {"skew_wide", 1000, 2000, 1.0, 0.0, 250, 0.0, 4, 3},
};

IntRows MakeSkewBuild(const SkewDataConfig& cfg, uint64_t seed) {
  Rng rng(seed);
  ZipfGenerator zipf(cfg.universe, cfg.build_theta);
  const uint64_t heavy_threshold =
      static_cast<uint64_t>(cfg.heavy_fraction * 1000000.0);
  IntRows out;
  out.reserve(cfg.build_rows);
  for (uint64_t i = 0; i < cfg.build_rows; ++i) {
    std::vector<int64_t> row(cfg.build_cols);
    if (cfg.build_theta > 0) {
      row[0] = static_cast<int64_t>(zipf.Next(rng) - 1);
    } else {
      row[0] = rng.Below(1000000) < heavy_threshold
                   ? int64_t{0}
                   : static_cast<int64_t>(1 + rng.Below(cfg.universe));
    }
    for (int c = 1; c < cfg.build_cols; ++c) {
      row[c] = static_cast<int64_t>(rng.Next() & 0xFFFF);
    }
    out.push_back(std::move(row));
  }
  return out;
}

IntRows MakeSkewProbe(const SkewDataConfig& cfg, uint64_t seed) {
  Rng rng(seed);
  // Probe universe is twice the build universe, so outer/anti kinds see
  // non-matching tuples too.
  const uint64_t universe = cfg.universe * 2;
  ZipfGenerator zipf(universe, cfg.probe_theta);
  IntRows out;
  out.reserve(cfg.probe_rows);
  for (uint64_t i = 0; i < cfg.probe_rows; ++i) {
    std::vector<int64_t> row(cfg.probe_cols);
    row[0] = cfg.probe_theta > 0
                 ? static_cast<int64_t>(zipf.Next(rng) - 1)
                 : static_cast<int64_t>(rng.Below(universe));
    for (int c = 1; c < cfg.probe_cols; ++c) {
      row[c] = static_cast<int64_t>(rng.Next() & 0xFFFF);
    }
    out.push_back(std::move(row));
  }
  return out;
}

class SkewDifferentialTest : public ::testing::TestWithParam<JoinKind> {};

TEST_P(SkewDifferentialTest, AllStrategiesMatchReferenceOnSkewedBuilds) {
  const JoinKind kind = GetParam();
  const JoinStrategy strategies[] = {JoinStrategy::kBHJ, JoinStrategy::kRJ,
                                     JoinStrategy::kBRJ};
  uint64_t seed = 7000 + static_cast<uint64_t>(kind) * 131;
  size_t idx = 0;
  for (const SkewDataConfig& cfg : kSkewConfigs) {
    SCOPED_TRACE(std::string("config=") + cfg.name);
    IntRows build = MakeSkewBuild(cfg, seed + idx * 2);
    IntRows probe = MakeSkewProbe(cfg, seed + idx * 2 + 1);
    IntRows expected =
        ReferenceJoin(build, probe, 0, kind, cfg.build_cols, cfg.probe_cols);
    const int threads = 1 + static_cast<int>(idx % 3);
    // Undefended: the baseline joins must already be correct under skew.
    for (JoinStrategy strategy : strategies) {
      SCOPED_TRACE(JoinStrategyName(strategy));
      IntRows actual = RunJoin(strategy, kind, build, probe, cfg.build_cols,
                               cfg.probe_cols, threads);
      ASSERT_EQ(actual, expected);
    }
    // Defended: heavy-hitter bypass + forced re-split, same results.
    for (JoinStrategy strategy : {JoinStrategy::kRJ, JoinStrategy::kBRJ}) {
      SCOPED_TRACE(std::string(JoinStrategyName(strategy)) + "+defense");
      JoinMetrics metrics;
      IntRows actual =
          RunJoin(strategy, kind, build, probe, cfg.build_cols, cfg.probe_cols,
                  threads, /*skew_defense=*/true, &metrics);
      ASSERT_EQ(actual, expected);
      EXPECT_TRUE(metrics.skew.enabled);
      // The 1 KiB threshold forces re-splits (or dense fallbacks) on every
      // config; the bypass bar (4%) is only guaranteed to be cleared on the
      // strongly skewed shapes.
      EXPECT_GT(metrics.skew.partitions_resplit + metrics.skew.dense_fallbacks,
                0u);
      if (cfg.build_theta >= 1.0 || cfg.heavy_fraction >= 0.25) {
        EXPECT_GE(metrics.skew.heavy_hitters, 1u);
        EXPECT_GT(metrics.skew.bypass_build_tuples, 0u);
      }
    }
    ++idx;
  }
}

// The defended join under a 16 KiB budget: heavy-hitter extraction happens
// before spill eviction, so the bypass, the re-split, and the out-of-core
// pair loop must compose — and still match the in-memory defended run.
TEST_P(SkewDifferentialTest, DefendedJoinSpillsUnderTinyBudget) {
  const JoinKind kind = GetParam();
  const SkewDataConfig& cfg = kSkewConfigs[4];  // heavy_half
  const uint64_t seed = 8100 + static_cast<uint64_t>(kind) * 17;
  IntRows build = MakeSkewBuild(cfg, seed);
  IntRows probe = MakeSkewProbe(cfg, seed + 1);
  IntRows expected =
      ReferenceJoin(build, probe, 0, kind, cfg.build_cols, cfg.probe_cols);

  IntRows actual;
  JoinMetrics metrics;
  {
    ScopedMemoryBudget scoped(16 * 1024);
    actual = RunJoin(JoinStrategy::kRJ, kind, build, probe, cfg.build_cols,
                     cfg.probe_cols, /*threads=*/2, /*skew_defense=*/true,
                     &metrics);
  }
  ASSERT_EQ(actual, expected);
  EXPECT_TRUE(metrics.spill.spilled);
  EXPECT_TRUE(metrics.skew.enabled);
  EXPECT_GE(metrics.skew.heavy_hitters, 1u);
  EXPECT_GT(metrics.skew.bypass_build_tuples, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SkewDifferentialTest, ::testing::ValuesIn(kKinds),
    [](const ::testing::TestParamInfo<JoinKind>& info) {
      std::string name = JoinKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace pjoin
