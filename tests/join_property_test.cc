// Property-style join tests over key types and randomized instances:
// 4-byte keys (workload B's format), composite keys, CHAR keys, and a
// seed sweep asserting pairwise strategy agreement.
#include <gtest/gtest.h>

#include <map>

#include "engine/executor.h"
#include "engine/plan.h"
#include "util/rng.h"

namespace pjoin {
namespace {

const std::vector<JoinStrategy> kStrategies = {
    JoinStrategy::kBHJ, JoinStrategy::kRJ, JoinStrategy::kBRJ,
    JoinStrategy::kBRJAdaptive};

// --- 4-byte integer keys (the workload-B column format) ---------------------

TEST(JoinKeyTypes, Int32Keys) {
  Table build("b32", Schema({{"bk", DataType::kInt32, 0},
                             {"bp", DataType::kInt32, 0}}));
  Table probe("p32", Schema({{"pk", DataType::kInt32, 0},
                             {"pp", DataType::kInt32, 0}}));
  Rng rng(31);
  std::map<int32_t, int> build_counts;
  for (int i = 0; i < 2000; ++i) {
    int32_t k = static_cast<int32_t>(rng.Below(900));
    build.column(0).AppendInt32(k);
    build.column(1).AppendInt32(i);
    build.FinishRow();
    build_counts[k]++;
  }
  int64_t expected = 0;
  for (int i = 0; i < 30000; ++i) {
    int32_t k = static_cast<int32_t>(rng.Below(1200));
    probe.column(0).AppendInt32(k);
    probe.column(1).AppendInt32(i);
    probe.FinishRow();
    auto it = build_counts.find(k);
    if (it != build_counts.end()) expected += it->second;
  }
  for (JoinStrategy s : kStrategies) {
    auto plan = Aggregate(
        Join(ScanTable(&build), ScanTable(&probe), {{"bk", "pk"}}), {},
        {AggDef::CountStar("n")});
    ExecOptions options;
    options.join_strategy = s;
    QueryResult r = ExecuteQuery(*plan, options);
    EXPECT_EQ(std::get<int64_t>(r.rows[0][0]), expected)
        << JoinStrategyName(s);
  }
}

// --- composite (two-column) keys ---------------------------------------------

TEST(JoinKeyTypes, CompositeKeys) {
  Table build("bc", Schema({{"b1", DataType::kInt64, 0},
                            {"b2", DataType::kInt64, 0}}));
  Table probe("pc", Schema({{"p1", DataType::kInt64, 0},
                            {"p2", DataType::kInt64, 0}}));
  Rng rng(32);
  std::map<std::pair<int64_t, int64_t>, int> build_counts;
  for (int i = 0; i < 3000; ++i) {
    int64_t a = static_cast<int64_t>(rng.Below(50));
    int64_t b = static_cast<int64_t>(rng.Below(50));
    build.column(0).AppendInt64(a);
    build.column(1).AppendInt64(b);
    build.FinishRow();
    build_counts[{a, b}]++;
  }
  int64_t expected = 0;
  for (int i = 0; i < 40000; ++i) {
    int64_t a = static_cast<int64_t>(rng.Below(60));
    int64_t b = static_cast<int64_t>(rng.Below(60));
    probe.column(0).AppendInt64(a);
    probe.column(1).AppendInt64(b);
    probe.FinishRow();
    auto it = build_counts.find({a, b});
    if (it != build_counts.end()) expected += it->second;
  }
  for (JoinStrategy s : kStrategies) {
    auto plan = Aggregate(Join(ScanTable(&build), ScanTable(&probe),
                               {{"b1", "p1"}, {"b2", "p2"}}),
                          {}, {AggDef::CountStar("n")});
    ExecOptions options;
    options.join_strategy = s;
    QueryResult r = ExecuteQuery(*plan, options);
    EXPECT_EQ(std::get<int64_t>(r.rows[0][0]), expected)
        << JoinStrategyName(s);
  }
  // A key pair must not collide with its swap: (a,b) != (b,a).
  Table probe_swapped("ps", Schema({{"q1", DataType::kInt64, 0},
                                    {"q2", DataType::kInt64, 0}}));
  probe_swapped.column(0).AppendInt64(1);
  probe_swapped.column(1).AppendInt64(2);
  probe_swapped.FinishRow();
  Table build_one("bo", Schema({{"c1", DataType::kInt64, 0},
                                {"c2", DataType::kInt64, 0}}));
  build_one.column(0).AppendInt64(2);
  build_one.column(1).AppendInt64(1);
  build_one.FinishRow();
  auto plan = Aggregate(Join(ScanTable(&build_one), ScanTable(&probe_swapped),
                             {{"c1", "q1"}, {"c2", "q2"}}),
                        {}, {AggDef::CountStar("n")});
  QueryResult r = ExecuteQuery(*plan, ExecOptions{});
  EXPECT_EQ(std::get<int64_t>(r.rows[0][0]), 0);
}

// --- CHAR keys ----------------------------------------------------------------

TEST(JoinKeyTypes, CharKeys) {
  Table build("bs", Schema({{"bname", DataType::kChar, 12},
                            {"bval", DataType::kInt64, 0}}));
  Table probe("pstr", Schema({{"pname", DataType::kChar, 12},
                              {"pval", DataType::kInt64, 0}}));
  const char* names[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
  for (int i = 0; i < 5; ++i) {
    build.column(0).AppendString(names[i]);
    build.column(1).AppendInt64(i);
    build.FinishRow();
  }
  Rng rng(33);
  int64_t expected = 0;
  for (int i = 0; i < 10000; ++i) {
    uint64_t pick = rng.Below(8);  // 3/8 of probes miss
    probe.column(0).AppendString(pick < 5 ? names[pick] : "unknown");
    probe.column(1).AppendInt64(i);
    probe.FinishRow();
    if (pick < 5) ++expected;
  }
  for (JoinStrategy s : kStrategies) {
    auto plan = Aggregate(
        Join(ScanTable(&build), ScanTable(&probe), {{"bname", "pname"}}), {},
        {AggDef::CountStar("n"), AggDef::Sum("bval", "sv")});
    ExecOptions options;
    options.join_strategy = s;
    QueryResult r = ExecuteQuery(*plan, options);
    EXPECT_EQ(std::get<int64_t>(r.rows[0][0]), expected)
        << JoinStrategyName(s);
  }
}

// --- randomized seed sweep -----------------------------------------------------

class JoinSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(JoinSeedSweep, AllStrategiesAgreeOnRandomInstance) {
  Rng meta(GetParam());
  const uint64_t build_n = 100 + meta.Below(3000);
  const uint64_t probe_n = 1000 + meta.Below(30000);
  const uint64_t universe = 1 + meta.Below(5000);
  Table build("rb", Schema({{"rbk", DataType::kInt64, 0},
                            {"rbp", DataType::kInt64, 0}}));
  Table probe("rp", Schema({{"rpk", DataType::kInt64, 0},
                            {"rpp", DataType::kInt64, 0}}));
  Rng rng(GetParam() * 7919 + 1);
  for (uint64_t i = 0; i < build_n; ++i) {
    build.column(0).AppendInt64(static_cast<int64_t>(rng.Below(universe)));
    build.column(1).AppendInt64(static_cast<int64_t>(i));
    build.FinishRow();
  }
  for (uint64_t i = 0; i < probe_n; ++i) {
    probe.column(0).AppendInt64(
        static_cast<int64_t>(rng.Below(universe + universe / 3)));
    probe.column(1).AppendInt64(static_cast<int64_t>(i));
    probe.FinishRow();
  }
  auto make_plan = [&] {
    return Aggregate(
        Join(ScanTable(&build), ScanTable(&probe), {{"rbk", "rpk"}}),
        {}, {AggDef::CountStar("n"), AggDef::Sum("rbp", "sb"),
             AggDef::Sum("rpp", "sp")});
  };
  QueryResult reference;
  for (size_t i = 0; i < kStrategies.size(); ++i) {
    ExecOptions options;
    options.join_strategy = kStrategies[i];
    options.num_threads = 1 + GetParam() % 4;
    QueryResult r = ExecuteQuery(*make_plan(), options);
    if (i == 0) {
      reference = r;
    } else {
      ASSERT_TRUE(r.ApproxEquals(reference))
          << "seed " << GetParam() << " "
          << JoinStrategyName(kStrategies[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinSeedSweep, ::testing::Range(1, 13));

}  // namespace
}  // namespace pjoin
