// Join correctness: BHJ, RJ, BRJ, and adaptive BRJ against a nested-loop
// reference for every join kind, over varied sizes, duplication factors, and
// selectivities. These are the invariants behind the paper's drop-in
// replacement claim: all joins must produce identical results.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "exec/pipeline.h"
#include "exec/thread_pool.h"
#include "join/hash_join.h"
#include "join/join_types.h"
#include "join/radix_join.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace pjoin {
namespace {

constexpr int kBuildCols = 2;
constexpr int kProbeCols = 2;

RowLayout MakeLayout(const std::string& prefix, int cols) {
  std::vector<RowField> fields;
  for (int i = 0; i < cols; ++i) {
    fields.push_back(
        RowField{prefix + std::to_string(i), DataType::kInt64, 8, 0});
  }
  return RowLayout(std::move(fields));
}

RowLayout MakeOutputLayout(JoinKind kind) {
  std::vector<RowField> fields;
  for (int i = 0; i < kBuildCols; ++i) {
    fields.push_back(RowField{"b" + std::to_string(i), DataType::kInt64, 8, 0});
  }
  for (int i = 0; i < kProbeCols; ++i) {
    fields.push_back(RowField{"p" + std::to_string(i), DataType::kInt64, 8, 0});
  }
  if (kind == JoinKind::kMark) {
    fields.push_back(RowField{"mark", DataType::kInt64, 8, 0});
  }
  return RowLayout(std::move(fields));
}

JoinProjection MakeProjection(const RowLayout* build, const RowLayout* probe,
                              const RowLayout* out, JoinKind kind) {
  JoinProjection projection;
  projection.output = out;
  projection.build = build;
  projection.probe = probe;
  for (int i = 0; i < kBuildCols; ++i) projection.from_build.push_back({i, i});
  for (int i = 0; i < kProbeCols; ++i) {
    projection.from_probe.push_back({kBuildCols + i, i});
  }
  if (kind == JoinKind::kMark) {
    projection.mark_field = kBuildCols + kProbeCols;
  }
  return projection;
}

// Runs one join through real pipelines and returns sorted output rows.
IntRows RunJoin(JoinStrategy strategy, JoinKind kind, const IntRows& build,
                const IntRows& probe, int threads) {
  RowLayout build_layout = MakeLayout("b", kBuildCols);
  RowLayout probe_layout = MakeLayout("p", kProbeCols);
  RowLayout out_layout = MakeOutputLayout(kind);
  JoinProjection projection =
      MakeProjection(&build_layout, &probe_layout, &out_layout, kind);

  ThreadPool pool(threads);
  ExecContext exec(&pool);
  IntRowsSource build_src(&build_layout, &build);
  IntRowsSource probe_src(&probe_layout, &probe);
  IntCollectSink sink(&out_layout);

  if (strategy == JoinStrategy::kBHJ) {
    HashJoin join(kind, &build_layout, {0}, &probe_layout, {0}, projection);
    HashJoinBuildSink build_sink(&join);
    HashJoinProbe probe_op(&join);
    Pipeline build_pipe;
    build_pipe.set_source(&build_src);
    build_pipe.AddOperator(&build_sink);
    build_pipe.Run(exec);
    Pipeline probe_pipe;
    probe_pipe.set_source(&probe_src);
    probe_pipe.AddOperator(&probe_op);
    probe_pipe.AddOperator(&sink);
    probe_pipe.Run(exec);
    if (EmitsBuildRows(kind)) {
      HashJoinBuildScanSource scan(&join);
      Pipeline scan_pipe;
      scan_pipe.set_source(&scan);
      scan_pipe.AddOperator(&sink);
      scan_pipe.Run(exec);
    }
  } else {
    RadixJoin::Options options;
    options.strategy = strategy;
    options.expected_build_tuples = build.size() | 1;
    options.num_threads = threads;
    RadixJoin join(kind, &build_layout, {0}, &probe_layout, {0}, projection,
                   options);
    RadixBuildSink build_sink(&join);
    RadixProbeSink probe_sink(&join);
    PartitionJoinSource join_src(&join);
    Pipeline build_pipe;
    build_pipe.set_source(&build_src);
    build_pipe.AddOperator(&build_sink);
    build_pipe.Run(exec);
    Pipeline probe_pipe;
    probe_pipe.set_source(&probe_src);
    probe_pipe.AddOperator(&probe_sink);
    probe_pipe.Run(exec);
    Pipeline join_pipe;
    join_pipe.set_source(&join_src);
    join_pipe.AddOperator(&sink);
    join_pipe.Run(exec);
  }
  return sink.SortedRows();
}

IntRows MakeRelation(uint64_t rows, uint64_t key_universe, uint64_t seed,
                     int cols) {
  IntRows out;
  Rng rng(seed);
  out.reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    std::vector<int64_t> row(cols);
    row[0] = static_cast<int64_t>(rng.Below(key_universe));
    for (int c = 1; c < cols; ++c) {
      row[c] = static_cast<int64_t>(rng.Next() & 0xFFFF);
    }
    out.push_back(std::move(row));
  }
  return out;
}

using JoinCase = std::tuple<JoinStrategy, JoinKind, int /*threads*/>;

class JoinCorrectnessTest : public ::testing::TestWithParam<JoinCase> {};

TEST_P(JoinCorrectnessTest, MatchesReference) {
  auto [strategy, kind, threads] = GetParam();
  // ~50% of probe keys have partners; duplicates on both sides.
  IntRows build = MakeRelation(800, 500, 1, kBuildCols);
  IntRows probe = MakeRelation(5000, 1000, 2, kProbeCols);
  IntRows expected =
      ReferenceJoin(build, probe, 0, kind, kBuildCols, kProbeCols);
  IntRows actual = RunJoin(strategy, kind, build, probe, threads);
  ASSERT_EQ(actual.size(), expected.size())
      << JoinStrategyName(strategy) << "/" << JoinKindName(kind);
  EXPECT_EQ(actual, expected);
}

TEST_P(JoinCorrectnessTest, EmptyBuildSide) {
  auto [strategy, kind, threads] = GetParam();
  IntRows build;
  IntRows probe = MakeRelation(1000, 100, 3, kProbeCols);
  IntRows expected =
      ReferenceJoin(build, probe, 0, kind, kBuildCols, kProbeCols);
  IntRows actual = RunJoin(strategy, kind, build, probe, threads);
  EXPECT_EQ(actual, expected);
}

TEST_P(JoinCorrectnessTest, EmptyProbeSide) {
  auto [strategy, kind, threads] = GetParam();
  IntRows build = MakeRelation(500, 100, 4, kBuildCols);
  IntRows probe;
  IntRows expected =
      ReferenceJoin(build, probe, 0, kind, kBuildCols, kProbeCols);
  IntRows actual = RunJoin(strategy, kind, build, probe, threads);
  EXPECT_EQ(actual, expected);
}

TEST_P(JoinCorrectnessTest, AllKeysMatch) {
  auto [strategy, kind, threads] = GetParam();
  IntRows build = MakeRelation(300, 100, 5, kBuildCols);
  IntRows probe = MakeRelation(3000, 100, 6, kProbeCols);
  IntRows expected =
      ReferenceJoin(build, probe, 0, kind, kBuildCols, kProbeCols);
  IntRows actual = RunJoin(strategy, kind, build, probe, threads);
  EXPECT_EQ(actual, expected);
}

TEST_P(JoinCorrectnessTest, NoKeysMatch) {
  auto [strategy, kind, threads] = GetParam();
  IntRows build = MakeRelation(300, 100, 7, kBuildCols);
  IntRows probe = MakeRelation(2000, 100, 8, kProbeCols);
  for (auto& row : probe) row[0] += 1000000;  // disjoint key ranges
  IntRows expected =
      ReferenceJoin(build, probe, 0, kind, kBuildCols, kProbeCols);
  IntRows actual = RunJoin(strategy, kind, build, probe, threads);
  EXPECT_EQ(actual, expected);
}

TEST_P(JoinCorrectnessTest, HeavyDuplication) {
  auto [strategy, kind, threads] = GetParam();
  // Tiny key universe: every probe tuple matches many build tuples.
  IntRows build = MakeRelation(400, 10, 9, kBuildCols);
  IntRows probe = MakeRelation(1500, 15, 10, kProbeCols);
  IntRows expected =
      ReferenceJoin(build, probe, 0, kind, kBuildCols, kProbeCols);
  IntRows actual = RunJoin(strategy, kind, build, probe, threads);
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAndKinds, JoinCorrectnessTest,
    ::testing::Combine(
        ::testing::Values(JoinStrategy::kBHJ, JoinStrategy::kRJ,
                          JoinStrategy::kBRJ, JoinStrategy::kBRJAdaptive),
        ::testing::Values(JoinKind::kInner, JoinKind::kProbeSemi,
                          JoinKind::kProbeAnti, JoinKind::kBuildSemi,
                          JoinKind::kBuildAnti, JoinKind::kLeftOuter,
                          JoinKind::kRightOuter, JoinKind::kMark),
        ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<JoinCase>& info) {
      std::string name = JoinStrategyName(std::get<0>(info.param));
      name += "_";
      name += JoinKindName(std::get<1>(info.param));
      name += "_t" + std::to_string(std::get<2>(info.param));
      for (char& c : name) {
        if (c == ' ' || c == '-' || c == '(' || c == ')') c = '_';
      }
      return name;
    });

// Larger randomized soak for inner joins across all strategies.
TEST(JoinSoak, LargeInnerJoinAllStrategiesAgree) {
  IntRows build = MakeRelation(20000, 15000, 11, kBuildCols);
  IntRows probe = MakeRelation(120000, 30000, 12, kProbeCols);
  IntRows reference =
      ReferenceJoin(build, probe, 0, JoinKind::kInner, kBuildCols, kProbeCols);
  for (JoinStrategy s : {JoinStrategy::kBHJ, JoinStrategy::kRJ,
                         JoinStrategy::kBRJ, JoinStrategy::kBRJAdaptive}) {
    IntRows actual = RunJoin(s, JoinKind::kInner, build, probe, 4);
    ASSERT_EQ(actual.size(), reference.size()) << JoinStrategyName(s);
    ASSERT_EQ(actual, reference) << JoinStrategyName(s);
  }
}

// The Bloom filter must drop non-matching probe tuples before partitioning.
TEST(BloomRadixJoin, FilterDropsNonMatchingTuples) {
  RowLayout build_layout = MakeLayout("b", kBuildCols);
  RowLayout probe_layout = MakeLayout("p", kProbeCols);
  RowLayout out_layout = MakeOutputLayout(JoinKind::kInner);
  JoinProjection projection = MakeProjection(&build_layout, &probe_layout,
                                             &out_layout, JoinKind::kInner);
  IntRows build = MakeRelation(500, 500, 13, kBuildCols);
  IntRows probe = MakeRelation(20000, 500, 14, kProbeCols);
  for (size_t i = 0; i < probe.size(); ++i) {
    if (i % 20 != 0) probe[i][0] += 1000000;  // 95% never match
  }

  ThreadPool pool(2);
  ExecContext exec(&pool);
  RadixJoin::Options options;
  options.strategy = JoinStrategy::kBRJ;
  options.expected_build_tuples = build.size();
  options.num_threads = 2;
  RadixJoin join(JoinKind::kInner, &build_layout, {0}, &probe_layout, {0},
                 projection, options);
  RadixBuildSink build_sink(&join);
  RadixProbeSink probe_sink(&join);
  PartitionJoinSource join_src(&join);
  IntRowsSource build_src(&build_layout, &build);
  IntRowsSource probe_src(&probe_layout, &probe);
  IntCollectSink sink(&out_layout);

  Pipeline bp;
  bp.set_source(&build_src);
  bp.AddOperator(&build_sink);
  bp.Run(exec);
  Pipeline pp;
  pp.set_source(&probe_src);
  pp.AddOperator(&probe_sink);
  pp.Run(exec);
  Pipeline jp;
  jp.set_source(&join_src);
  jp.AddOperator(&sink);
  jp.Run(exec);

  // >=90% of the probe side must have been dropped pre-materialization
  // (95% minus Bloom false positives).
  EXPECT_GT(probe_sink.tuples_dropped_by_filter(), probe.size() * 9 / 10);
  EXPECT_LT(join.probe_partitioner().total_tuples(), probe.size() / 5);
  // And the result still matches the reference.
  IntRows expected = ReferenceJoin(build, probe, 0, JoinKind::kInner,
                                   kBuildCols, kProbeCols);
  EXPECT_EQ(sink.SortedRows(), expected);
}

// The adaptive BRJ must switch its filter off when everything passes.
TEST(BloomRadixJoin, AdaptiveSwitchesOffAtFullSelectivity) {
  RowLayout build_layout = MakeLayout("b", kBuildCols);
  RowLayout probe_layout = MakeLayout("p", kProbeCols);
  RowLayout out_layout = MakeOutputLayout(JoinKind::kInner);
  JoinProjection projection = MakeProjection(&build_layout, &probe_layout,
                                             &out_layout, JoinKind::kInner);
  IntRows build = MakeRelation(2000, 300, 15, kBuildCols);
  // Guarantee every probe key exists on the build side (true 100% match):
  for (int64_t k = 0; k < 300; ++k) build.push_back({k, 0});
  IntRows probe = MakeRelation(60000, 300, 16, kProbeCols);

  ThreadPool pool(1);
  ExecContext exec(&pool);
  RadixJoin::Options options;
  options.strategy = JoinStrategy::kBRJAdaptive;
  options.expected_build_tuples = build.size();
  options.num_threads = 1;
  RadixJoin join(JoinKind::kInner, &build_layout, {0}, &probe_layout, {0},
                 projection, options);
  RadixBuildSink build_sink(&join);
  RadixProbeSink probe_sink(&join);
  IntRowsSource build_src(&build_layout, &build);
  IntRowsSource probe_src(&probe_layout, &probe);

  Pipeline bp;
  bp.set_source(&build_src);
  bp.AddOperator(&build_sink);
  bp.Run(exec);
  Pipeline pp;
  pp.set_source(&probe_src);
  pp.AddOperator(&probe_sink);
  pp.Run(exec);

  EXPECT_FALSE(join.adaptive_controller().enabled());
  // Nothing may be dropped at 100% selectivity.
  EXPECT_EQ(probe_sink.tuples_dropped_by_filter(), 0u);
  EXPECT_EQ(join.probe_partitioner().total_tuples(), probe.size());
}

}  // namespace
}  // namespace pjoin
