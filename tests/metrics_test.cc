// Tests for the query-wide observability layer: operator/pipeline/join
// actuals recorded in QueryMetrics, the EXPLAIN ANALYZE rendering, and the
// stable JSON export.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/explain.h"
#include "engine/plan.h"
#include "exec/morsel.h"
#include "util/env.h"
#include "util/rng.h"

namespace pjoin {
namespace {

// Star-schema fixture: fact(f_k1, f_k2, f_v) joins dim1(d1_k) and
// dim2(d2_k). Half of the fact foreign keys have partners on each
// dimension, so every join has a known selectivity.
class MetricsTest : public ::testing::Test {
 protected:
  MetricsTest()
      : dim1_("dim1", Schema({{"d1_k", DataType::kInt64, 0}})),
        dim2_("dim2", Schema({{"d2_k", DataType::kInt64, 0}})),
        fact_("fact", Schema({{"f_k1", DataType::kInt64, 0},
                              {"f_k2", DataType::kInt64, 0},
                              {"f_v", DataType::kInt64, 0}})) {
    for (int64_t k = 0; k < kDim1Rows; ++k) {
      dim1_.column(0).AppendInt64(k);
      dim1_.FinishRow();
    }
    for (int64_t k = 0; k < kDim2Rows; ++k) {
      dim2_.column(0).AppendInt64(k);
      dim2_.FinishRow();
    }
    Rng rng(7);
    for (int64_t i = 0; i < kFactRows; ++i) {
      fact_.column(0).AppendInt64(
          static_cast<int64_t>(rng.Below(2 * kDim1Rows)));
      fact_.column(1).AppendInt64(
          static_cast<int64_t>(rng.Below(2 * kDim2Rows)));
      fact_.column(2).AppendInt64(static_cast<int64_t>(rng.Next() & 0xFF));
      fact_.FinishRow();
    }
  }

  std::unique_ptr<PlanNode> TwoJoinPlan() {
    auto inner = Join(ScanTable(&dim2_), ScanTable(&fact_),
                      {{"d2_k", "f_k2"}});
    auto outer = Join(ScanTable(&dim1_), std::move(inner),
                      {{"d1_k", "f_k1"}});
    return Aggregate(std::move(outer), {}, {AggDef::CountStar("n")});
  }

  static constexpr int64_t kDim1Rows = 100;
  static constexpr int64_t kDim2Rows = 200;
  static constexpr int64_t kFactRows = 20000;

  Table dim1_;
  Table dim2_;
  Table fact_;
};

TEST_F(MetricsTest, RowsOutConsistentAcrossStrategies) {
  auto plan = TwoJoinPlan();
  std::vector<JoinStrategy> strategies = {JoinStrategy::kBHJ,
                                          JoinStrategy::kRJ,
                                          JoinStrategy::kBRJ};
  std::vector<QueryStats> stats(strategies.size());
  std::vector<int64_t> counts;
  for (size_t s = 0; s < strategies.size(); ++s) {
    ExecOptions options;
    options.join_strategy = strategies[s];
    options.num_threads = 4;
    QueryResult result = ExecuteQuery(*plan, options, &stats[s]);
    counts.push_back(std::get<int64_t>(result.rows[0][0]));
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[0], counts[2]);

  // The same plan over the same data must report identical cardinalities
  // from every strategy: per-join output rows and matched probe tuples.
  for (int join_id = 0; join_id < 2; ++join_id) {
    const JoinMetrics* bhj = stats[0].metrics.FindJoin(join_id);
    const JoinMetrics* rj = stats[1].metrics.FindJoin(join_id);
    const JoinMetrics* brj = stats[2].metrics.FindJoin(join_id);
    ASSERT_NE(bhj, nullptr);
    ASSERT_NE(rj, nullptr);
    ASSERT_NE(brj, nullptr);
    EXPECT_EQ(bhj->rows_out, rj->rows_out) << "join " << join_id;
    EXPECT_EQ(bhj->rows_out, brj->rows_out) << "join " << join_id;
    EXPECT_EQ(bhj->probe_matched, rj->probe_matched) << "join " << join_id;
    EXPECT_GT(bhj->rows_out, 0u);
  }

  // The top join feeds the aggregate: its output must equal the aggregate's
  // input row count.
  for (const QueryStats& st : stats) {
    const JoinMetrics* top = st.metrics.FindJoin(1);
    ASSERT_NE(top, nullptr);
    EXPECT_EQ(top->rows_out, st.metrics.TotalsFor("hash_agg").rows_in);
    EXPECT_EQ(static_cast<int64_t>(top->rows_out), counts[0]);
  }

  // Strategy-specific internals are present.
  EXPECT_TRUE(stats[0].metrics.FindJoin(0)->has_hash_table);
  EXPECT_FALSE(stats[0].metrics.FindJoin(0)->has_partitions);
  EXPECT_TRUE(stats[1].metrics.FindJoin(0)->has_partitions);
  EXPECT_EQ(stats[0].metrics.FindJoin(0)->hash_table.build_tuples,
            static_cast<uint64_t>(kDim2Rows));
}

TEST_F(MetricsTest, MorselCountsSumToTotals) {
  auto plan = TwoJoinPlan();
  ExecOptions options;
  options.join_strategy = JoinStrategy::kBHJ;
  options.num_threads = 4;
  QueryStats stats;
  ExecuteQuery(*plan, options, &stats);

  ASSERT_FALSE(stats.metrics.pipelines().empty());
  bool found_fact_scan = false;
  for (const PipelineMetrics& pm : stats.metrics.pipelines()) {
    ASSERT_EQ(pm.morsels_per_worker.size(), 4u) << pm.label;
    uint64_t sum = 0;
    for (uint64_t m : pm.morsels_per_worker) sum += m;
    EXPECT_EQ(sum, pm.total_morsels()) << pm.label;
    if (pm.label == "scan fact") {
      found_fact_scan = true;
      // Source morsels are fixed-size row ranges over the base table.
      EXPECT_EQ(pm.total_morsels(),
                (static_cast<uint64_t>(kFactRows) + kDefaultMorselSize - 1) /
                    kDefaultMorselSize);
    }
  }
  EXPECT_TRUE(found_fact_scan);

  // Scan operator totals agree with the per-scan records.
  uint64_t scans_passed = 0;
  for (const ScanMetrics& sm : stats.metrics.scans()) {
    scans_passed += sm.rows_passed;
  }
  EXPECT_EQ(stats.metrics.TotalsFor("scan").rows_out, scans_passed);
  EXPECT_EQ(stats.metrics.source_tuples(),
            static_cast<uint64_t>(kDim1Rows + kDim2Rows + kFactRows));
}

TEST_F(MetricsTest, BloomPassRateTracksSelectivity) {
  // Single join: dim keys [0, 1000), fact keys uniform in [0, 4000) — the
  // analytic filter pass rate is 0.25 plus the (small) false-positive rate
  // of a ~16-bits-per-key register-blocked filter.
  Table dim("dim", Schema({{"d_k", DataType::kInt64, 0}}));
  for (int64_t k = 0; k < 1000; ++k) {
    dim.column(0).AppendInt64(k);
    dim.FinishRow();
  }
  Table fact("factb", Schema({{"g_k", DataType::kInt64, 0}}));
  Rng rng(11);
  const int64_t fact_rows = 50000;
  for (int64_t i = 0; i < fact_rows; ++i) {
    fact.column(0).AppendInt64(static_cast<int64_t>(rng.Below(4000)));
    fact.FinishRow();
  }
  auto plan = Aggregate(
      Join(ScanTable(&dim), ScanTable(&fact), {{"d_k", "g_k"}}), {},
      {AggDef::CountStar("n")});

  ExecOptions options;
  options.join_strategy = JoinStrategy::kBRJ;
  options.num_threads = 2;
  QueryStats stats;
  ExecuteQuery(*plan, options, &stats);

  const JoinMetrics* jm = stats.metrics.FindJoin(0);
  ASSERT_NE(jm, nullptr);
  EXPECT_TRUE(jm->bloom.applicable);
  EXPECT_EQ(jm->bloom.probes, static_cast<uint64_t>(fact_rows));
  EXPECT_EQ(jm->bloom.build_keys, 1000u);
  const double pass = jm->bloom.pass_rate();
  EXPECT_GE(pass, 0.24);
  EXPECT_LE(pass, 0.30);
  // The filter's negatives are exactly the tuples the executor reports as
  // pruned, and none of them reached the partitioner.
  EXPECT_EQ(stats.bloom_dropped, jm->bloom.negatives);
  EXPECT_EQ(jm->probe_side.tuples,
            static_cast<uint64_t>(fact_rows) - jm->bloom.negatives);
}

TEST_F(MetricsTest, ExplainAnalyzeShowsActuals) {
  auto plan = TwoJoinPlan();
  ExecOptions options;
  options.join_strategy = JoinStrategy::kBHJ;
  options.num_threads = 2;
  QueryStats stats;
  ExecuteQuery(*plan, options, &stats);
  std::string text = ExplainAnalyzePlan(*plan, options, stats);

  // Tree annotations: every operator carries its actuals.
  EXPECT_NE(text.find("aggregate [groups:0 aggs:1] (rows_in="),
            std::string::npos);
  EXPECT_NE(text.find("join #1 [inner, BHJ]"), std::string::npos);
  EXPECT_NE(text.find("(build=100 probe="), std::string::npos);
  EXPECT_NE(text.find("ht: entries=100"), std::string::npos);
  if (RewriteEnabledEnv()) {
    // The rewrite pass plants a Bloom filter on the fact scan (dim1's keys
    // cover only half of f_k1's domain), which the scan line annotates.
    EXPECT_NE(text.find("rewrite: rules=bloom"), std::string::npos);
    // No closing paren: with encoding on, the line continues with the
    // enc_width/decoded/codes suffix (FOR-encoded int columns).
    EXPECT_NE(
        text.find(
            "scan fact [20000 rows, bloom(j1.f_k1)] (scanned=20000 "
            "passed=20000"),
        std::string::npos);
  } else {
    // PJOIN_REWRITE=0 restores the pre-rewrite rendering byte-for-byte.
    EXPECT_EQ(text.find("rewrite"), std::string::npos);
    EXPECT_NE(
        text.find("scan fact [20000 rows] (scanned=20000 passed=20000"),
        std::string::npos);
  }
  // Trailing pipeline section with per-operator rows.
  EXPECT_NE(text.find("pipelines:"), std::string::npos);
  EXPECT_NE(text.find("hash_join_probe j1"), std::string::npos);
  EXPECT_NE(text.find("morsels="), std::string::npos);

  // The radix strategies annotate their partitioner and filter internals.
  options.join_strategy = JoinStrategy::kBRJ;
  QueryStats rstats;
  ExecuteQuery(*plan, options, &rstats);
  std::string rtext = ExplainAnalyzePlan(*plan, options, rstats);
  EXPECT_NE(rtext.find("radix: "), std::string::npos);
  EXPECT_NE(rtext.find("swwcb_flushes="), std::string::npos);
  EXPECT_NE(rtext.find("bloom: "), std::string::npos);
  EXPECT_NE(rtext.find("pass_rate="), std::string::npos);
}

TEST_F(MetricsTest, ExplainAnalyzeGoldenTree) {
  // Tiny deterministic query on one thread: the full tree rendering
  // (everything before the timing section) must match byte-for-byte.
  Table d("d", Schema({{"d_k", DataType::kInt64, 0}}));
  Table f("f", Schema({{"f_k", DataType::kInt64, 0}}));
  for (int64_t k = 0; k < 2; ++k) {
    d.column(0).AppendInt64(k);
    d.FinishRow();
  }
  const int64_t fact_keys[4] = {0, 0, 1, 5};
  for (int64_t v : fact_keys) {
    f.column(0).AppendInt64(v);
    f.FinishRow();
  }
  auto plan = Aggregate(Join(ScanTable(&d), ScanTable(&f), {{"d_k", "f_k"}}),
                        {}, {AggDef::CountStar("n")});
  ExecOptions options;
  options.join_strategy = JoinStrategy::kBHJ;
  options.num_threads = 1;
  QueryStats stats;
  ExecuteQuery(*plan, options, &stats);
  std::string text = ExplainAnalyzePlan(*plan, options, stats);
  std::string tree = text.substr(0, text.find("\ntotal:"));

  const std::string expected =
      "aggregate [groups:0 aggs:1] (rows_in=3 rows_out=1)\n"
      "  join #0 [inner, BHJ] on d_k = f_k "
      "(build=2 probe=4 matched=3 rows_out=3)\n"
      "    ht: entries=2 dir_slots=64 chained=0 max_chain=1 resizes=0 "
      "mem=560B\n"
      "    scan d [2 rows] (scanned=2 passed=2)\n"
      "    scan f [4 rows] (scanned=4 passed=4)\n";
  EXPECT_EQ(tree, expected);
}

TEST_F(MetricsTest, ExplainAnalyzeShowsAdvisorDecisionAndActuals) {
  auto plan = TwoJoinPlan();
  ExecOptions options;
  options.join_strategy = JoinStrategy::kAuto;
  options.advisor.l2_bytes = 1 << 20;
  options.advisor.llc_bytes = 16 << 20;
  options.num_threads = 2;
  QueryStats stats;
  ExecuteQuery(*plan, options, &stats);
  std::string text = ExplainAnalyzePlan(*plan, options, stats);

  // The join line shows the resolved pick and its actuals; the advisor
  // sub-line shows the estimates it was based on — both dims fit L2.
  EXPECT_NE(text.find("join #1 [inner, auto:BHJ]"), std::string::npos);
  EXPECT_NE(text.find("(build=100 probe="), std::string::npos);
  // With statistics the outer join's probe estimate is the inner join's
  // output estimate (200 * 20000 / ~400 distinct f_k2 values = 10000); the
  // pre-stats heuristic echoes the probe input.
  EXPECT_NE(text.find(StatsEnabled()
                          ? "advisor: est_build=100 est_probe=10000"
                          : "advisor: est_build=100 est_probe=20000"),
            std::string::npos);
  EXPECT_NE(text.find("advisor: est_build=200 est_probe=20000"),
            std::string::npos);
  EXPECT_NE(text.find("-- build fits L2"), std::string::npos);
  // No guardrail trigger on this query.
  EXPECT_EQ(text.find("fell back"), std::string::npos);

  // The metrics record the decision for each join.
  for (int join_id = 0; join_id < 2; ++join_id) {
    const JoinMetrics* jm = stats.metrics.FindJoin(join_id);
    ASSERT_NE(jm, nullptr);
    EXPECT_TRUE(jm->advisor.present);
    EXPECT_EQ(jm->advisor.choice, JoinStrategy::kBHJ);
    EXPECT_FALSE(jm->advisor.fell_back);
    EXPECT_GT(jm->advisor.cost_bhj, 0.0);
    EXPECT_GT(jm->advisor.cost_rj, 0.0);
  }
}

TEST_F(MetricsTest, ToJsonStableUnderAutoStrategy) {
  auto plan = TwoJoinPlan();
  ExecOptions options;
  options.join_strategy = JoinStrategy::kAuto;
  options.advisor.l2_bytes = 1 << 20;
  options.advisor.llc_bytes = 16 << 20;
  options.num_threads = 1;

  QueryStats a, b;
  ExecuteQuery(*plan, options, &a);
  ExecuteQuery(*plan, options, &b);
  const std::string ja = a.metrics.ToJson(/*include_timings=*/false);
  EXPECT_EQ(ja, b.metrics.ToJson(false));

  // The advisor object is present with its fixed key order.
  EXPECT_NE(ja.find("\"advisor\":{\"choice\":\"BHJ\""), std::string::npos);
  EXPECT_NE(ja.find("\"est_build_tuples\":"), std::string::npos);
  EXPECT_NE(ja.find("\"cost_bhj\":"), std::string::npos);
  EXPECT_NE(ja.find("\"fell_back\":false"), std::string::npos);

  // Manual strategies serialize without it (pre-advisor schema unchanged).
  ExecOptions manual = options;
  manual.join_strategy = JoinStrategy::kBHJ;
  QueryStats m;
  ExecuteQuery(*plan, manual, &m);
  EXPECT_EQ(m.metrics.ToJson(false).find("\"advisor\""), std::string::npos);
}

TEST_F(MetricsTest, ToJsonStableAcrossRuns) {
  auto plan = TwoJoinPlan();
  ExecOptions options;
  options.join_strategy = JoinStrategy::kBRJ;
  // One worker: with several, which worker claims which morsel is a
  // scheduling race, so morsels_per_worker (correctly) differs run to run.
  options.num_threads = 1;

  QueryStats a, b;
  ExecuteQuery(*plan, options, &a);
  ExecuteQuery(*plan, options, &b);

  // Without timings a single-threaded document depends only on plan and
  // data — two runs must serialize identically.
  const std::string ja = a.metrics.ToJson(/*include_timings=*/false);
  EXPECT_EQ(ja, b.metrics.ToJson(false));

  // Spot-check the schema benches and external tooling rely on.
  EXPECT_NE(ja.find("\"num_threads\":1"), std::string::npos);
  EXPECT_NE(ja.find("\"strategy\":\"BRJ\""), std::string::npos);
  EXPECT_NE(ja.find("\"pipelines\":["), std::string::npos);
  EXPECT_NE(ja.find("\"table\":\"fact\",\"rows_scanned\":20000"),
            std::string::npos);
  EXPECT_NE(ja.find("\"pass_rate\":"), std::string::npos);
  EXPECT_EQ(ja.find("\"seconds\""), std::string::npos);
  EXPECT_EQ(ja.find("\"wall_seconds\""), std::string::npos);

  // The timed form adds the wall-clock fields.
  const std::string timed = a.metrics.ToJson();
  EXPECT_NE(timed.find("\"seconds\":"), std::string::npos);
  EXPECT_NE(timed.find("\"wall_seconds\":"), std::string::npos);
}

}  // namespace
}  // namespace pjoin
