// Tests for the chunked buffers and the two-pass radix partitioner.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <tuple>
#include <vector>

#include "exec/thread_pool.h"
#include "filter/blocked_bloom.h"
#include "partition/chunked_buffer.h"
#include "partition/radix_partitioner.h"
#include "util/hash.h"
#include "util/rng.h"

namespace pjoin {
namespace {

TEST(ChunkedBuffer, AppendAcrossChunks) {
  ChunkedTupleBuffer buf;
  buf.Init(16);
  for (int i = 0; i < 5000; ++i) {
    std::byte* dst = buf.AllocBytes(16);
    std::memcpy(dst, &i, 4);
  }
  EXPECT_EQ(buf.num_tuples(), 5000u);
  EXPECT_EQ(buf.total_bytes(), 5000u * 16u);
  int next = 0;
  buf.ForEachChunk([&](const std::byte* data, uint64_t used) {
    for (uint64_t off = 0; off < used; off += 16) {
      int v;
      std::memcpy(&v, data + off, 4);
      EXPECT_EQ(v, next++);
    }
  });
  EXPECT_EQ(next, 5000);
}

TEST(ChunkedBuffer, BlockAllocationsStayAligned) {
  ChunkedTupleBuffer buf;
  buf.Init(16);
  for (int i = 0; i < 1000; ++i) {
    std::byte* dst = buf.AllocBytes(kSwwcbBytes);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(dst) % 64, 0u) << i;
  }
}

TEST(ChunkedBuffer, ClearReleases) {
  ChunkedTupleBuffer buf;
  buf.Init(8);
  buf.AllocBytes(8);
  buf.Clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.num_tuples(), 0u);
}

// ---- RadixPartitioner -------------------------------------------------------

struct PartitionCase {
  int bits1;
  int bits2;
  bool swwcb;
  bool streaming;
  uint32_t row_stride;
  int threads;
};

class RadixPartitionerTest
    : public ::testing::TestWithParam<PartitionCase> {};

TEST_P(RadixPartitionerTest, AllTuplesLandInCorrectPartition) {
  const PartitionCase& pc = GetParam();
  RadixConfig config;
  config.row_stride = pc.row_stride;
  config.bits1 = pc.bits1;
  config.bits2 = pc.bits2;
  config.num_threads = pc.threads;
  config.use_swwcb = pc.swwcb;
  config.use_streaming = pc.streaming;
  RadixPartitioner part(config);

  const uint64_t kTuples = 40000;
  ThreadPool pool(pc.threads);
  // Feed tuples round-robin from all worker threads, row = key bytes.
  pool.ParallelRun([&](int tid) {
    std::vector<std::byte> row(pc.row_stride);
    for (uint64_t k = tid; k < kTuples; k += pc.threads) {
      std::memcpy(row.data(), &k, 8);
      part.Add(tid, HashInt64(k), row.data(), nullptr);
    }
    part.FlushThread(tid, nullptr);
  });
  part.Finalize(pool, nullptr, nullptr);

  EXPECT_EQ(part.total_tuples(), kTuples);
  const int mask = part.num_partitions() - 1;
  uint64_t seen = 0;
  std::vector<char> key_seen(kTuples, 0);
  for (int f = 0; f < part.num_partitions(); ++f) {
    const std::byte* data = part.partition_data(f);
    for (uint64_t i = 0; i < part.partition_tuples(f); ++i) {
      const std::byte* tuple = data + i * part.tuple_stride();
      uint64_t hash = RadixPartitioner::TupleHash(tuple);
      EXPECT_EQ(static_cast<int>(hash & mask), f);
      uint64_t key;
      std::memcpy(&key, RadixPartitioner::TupleRow(tuple), 8);
      ASSERT_LT(key, kTuples);
      EXPECT_EQ(hash, HashInt64(key));  // hash stored with the tuple
      key_seen[key]++;
      ++seen;
    }
  }
  EXPECT_EQ(seen, kTuples);
  for (uint64_t k = 0; k < kTuples; ++k) {
    EXPECT_EQ(key_seen[k], 1) << "key duplicated or lost: " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, RadixPartitionerTest,
    ::testing::Values(
        PartitionCase{4, 4, true, true, 8, 1},
        PartitionCase{4, 4, true, true, 8, 4},
        PartitionCase{6, 4, true, false, 8, 2},   // SWWCB without streaming
        PartitionCase{6, 4, false, false, 8, 2},  // direct scatter
        PartitionCase{3, 0, true, true, 8, 2},    // single-pass (bits2 = 0)
        PartitionCase{0, 4, true, true, 8, 2},    // degenerate pass 1
        PartitionCase{5, 3, true, true, 24, 3},   // 32B padded tuples
        PartitionCase{4, 2, true, true, 56, 2},   // 64B padded tuples
        PartitionCase{4, 2, true, true, 100, 2},  // >64B: buffers disabled
        PartitionCase{8, 8, true, true, 8, 2}));  // max fan-out 65536

TEST(RadixPartitioner, EmptyInput) {
  RadixConfig config;
  config.num_threads = 2;
  RadixPartitioner part(config);
  ThreadPool pool(2);
  pool.ParallelRun([&](int tid) { part.FlushThread(tid, nullptr); });
  part.Finalize(pool, nullptr, nullptr);
  EXPECT_EQ(part.total_tuples(), 0u);
  for (int f = 0; f < part.num_partitions(); ++f) {
    EXPECT_EQ(part.partition_tuples(f), 0u);
  }
}

TEST(RadixPartitioner, StridePaddedToPowerOfTwo) {
  RadixConfig config;
  config.row_stride = 24;  // 8 hash + 24 row = 32
  RadixPartitioner part(config);
  EXPECT_EQ(part.tuple_stride(), 32u);

  config.row_stride = 25;  // 33 -> pad to 64
  RadixPartitioner part2(config);
  EXPECT_EQ(part2.tuple_stride(), 64u);

  config.row_stride = 80;  // 88 > 64: unbuffered, 8-byte aligned
  RadixPartitioner part3(config);
  EXPECT_EQ(part3.tuple_stride(), 88u);
}

TEST(RadixPartitioner, PendingTuplesBeforeFinalize) {
  RadixConfig config;
  config.num_threads = 1;
  config.row_stride = 8;
  RadixPartitioner part(config);
  int64_t row = 0;
  for (uint64_t k = 0; k < 777; ++k) {
    part.Add(0, HashInt64(k), reinterpret_cast<std::byte*>(&row), nullptr);
  }
  part.FlushThread(0, nullptr);
  EXPECT_EQ(part.PendingTuples(), 777u);
}

TEST(RadixPartitioner, BloomBuiltDuringPass2) {
  RadixConfig config;
  config.num_threads = 1;
  config.row_stride = 8;
  config.bits1 = 4;
  config.bits2 = 2;
  RadixPartitioner part(config);
  BlockedBloomFilter bloom;

  int64_t row = 0;
  for (uint64_t k = 0; k < 5000; ++k) {
    part.Add(0, HashInt64(k), reinterpret_cast<std::byte*>(&row), nullptr);
  }
  part.FlushThread(0, nullptr);
  bloom.Resize(part.PendingTuples(), uint64_t{1} << config.bits1);
  part.set_bloom(&bloom);
  ThreadPool pool(1);
  part.Finalize(pool, nullptr, nullptr);

  for (uint64_t k = 0; k < 5000; ++k) {
    EXPECT_TRUE(bloom.MayContain(HashInt64(k)));
  }
  int fp = 0;
  for (uint64_t k = 5000; k < 15000; ++k) {
    if (bloom.MayContain(HashInt64(k))) ++fp;
  }
  EXPECT_LT(fp, 1000);
}

TEST(RadixPartitioner, ByteAccountingCoversAllTuples) {
  RadixConfig config;
  config.num_threads = 1;
  config.row_stride = 8;
  RadixPartitioner part(config);
  ByteCounter bytes;
  int64_t row = 0;
  const uint64_t kTuples = 10000;
  for (uint64_t k = 0; k < kTuples; ++k) {
    part.Add(0, HashInt64(k), reinterpret_cast<std::byte*>(&row), &bytes);
  }
  part.FlushThread(0, &bytes);
  ThreadPool pool(1);
  ByteCounter finalize_bytes[1];
  part.Finalize(pool, nullptr, finalize_bytes);
  uint64_t stride = part.tuple_stride();
  EXPECT_EQ(bytes.phase(JoinPhase::kPartitionPass1).written, kTuples * stride);
  EXPECT_EQ(finalize_bytes[0].phase(JoinPhase::kPartitionPass2).written,
            kTuples * stride);
  EXPECT_EQ(finalize_bytes[0].phase(JoinPhase::kHistogramScan).read,
            kTuples * stride);
}

TEST(ChooseRadixBits, ScalesWithBuildSize) {
  RadixBits small = ChooseRadixBits(1000, 16);
  RadixBits large = ChooseRadixBits(100'000'000, 16);
  EXPECT_LE(small.bits1 + small.bits2, large.bits1 + large.bits2);
  EXPECT_GE(small.bits1 + small.bits2, 1);
  EXPECT_LE(large.bits1 + large.bits2, 16);
}

TEST(RadixPartitioner, SkewedInputStillCorrect) {
  // Heavy skew (many duplicates of one key) stresses the chunk growth and
  // per-partition cursor logic.
  RadixConfig config;
  config.num_threads = 2;
  config.row_stride = 8;
  config.bits1 = 4;
  config.bits2 = 4;
  RadixPartitioner part(config);
  ThreadPool pool(2);
  const uint64_t kTuples = 60000;
  pool.ParallelRun([&](int tid) {
    Rng rng(100 + tid);
    int64_t row = 0;
    for (uint64_t i = tid; i < kTuples; i += 2) {
      uint64_t key = rng.Below(10) == 0 ? rng.Below(1000) : 42;  // ~90% dup
      part.Add(tid, HashInt64(key), reinterpret_cast<std::byte*>(&row),
               nullptr);
    }
    part.FlushThread(tid, nullptr);
  });
  part.Finalize(pool, nullptr, nullptr);
  EXPECT_EQ(part.total_tuples(), kTuples);
  // The partition holding key 42 must contain >= 90% of all tuples.
  int hot = static_cast<int>(HashInt64(42) & (part.num_partitions() - 1));
  EXPECT_GT(part.partition_tuples(hot), kTuples * 8 / 10);
}

}  // namespace
}  // namespace pjoin
