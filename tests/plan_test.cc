// Tests for plan analysis (output columns, join counting, estimates) and
// executor audits.
#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/plan.h"
#include "tpch/gen.h"
#include "tpch/queries.h"
#include "util/env.h"

namespace pjoin {
namespace {

Table SmallTable(const std::string& name, const std::string& prefix,
                 int64_t rows) {
  Table t(name, Schema({{prefix + "_key", DataType::kInt64, 0},
                        {prefix + "_pay", DataType::kInt64, 0}}));
  for (int64_t i = 0; i < rows; ++i) {
    t.column(0).AppendInt64(i);
    t.column(1).AppendInt64(i);
    t.FinishRow();
  }
  return t;
}

TEST(Plan, OutputColumnsPropagate) {
  Table a = SmallTable("a", "a", 10);
  Table b = SmallTable("b", "b", 10);
  auto join = Join(ScanTable(&a), ScanTable(&b), {{"a_key", "b_key"}},
                   JoinKind::kMark, "found");
  auto cols = join->OutputColumns();
  ASSERT_EQ(cols.size(), 5u);  // a_key a_pay b_key b_pay found
  EXPECT_EQ(cols.back().name, "found");
  EXPECT_EQ(cols.back().source_table, nullptr);
  EXPECT_EQ(cols[0].source_table, &a);
}

TEST(Plan, CountJoinsRecurses) {
  Table a = SmallTable("a", "a", 10);
  Table b = SmallTable("b", "b", 10);
  Table c = SmallTable("c", "c", 10);
  auto inner = Join(ScanTable(&a), ScanTable(&b), {{"a_key", "b_key"}});
  auto outer = Join(std::move(inner), ScanTable(&c), {{"a_key", "c_key"}});
  EXPECT_EQ(outer->CountJoins(), 2);
  auto agg = Aggregate(std::move(outer), {}, {AggDef::CountStar("n")});
  EXPECT_EQ(agg->CountJoins(), 2);
}

TEST(Plan, EstimateFollowsProbeSide) {
  Table small = SmallTable("s", "s", 10);
  Table big = SmallTable("bg", "bg", 100000);
  auto join = Join(ScanTable(&small), ScanTable(&big), {{"s_key", "bg_key"}});
  if (StatsEnabled()) {
    // |B|*|P| / max(d_build, d_probe): 10 build keys against 100000 distinct
    // probe keys — only the 10 matching probe rows survive.
    EXPECT_EQ(join->EstimateRows(), 10u);
  } else {
    // Pre-stats heuristic: a join is estimated at its probe input.
    EXPECT_EQ(join->EstimateRows(), 100000u);
  }
}

TEST(Plan, MultiPredicateScanEstimatesCombine) {
  // Two uniform columns: "a" over [0, 99], "b" over [0, 9]. Selectivities of
  // conjunctive predicates must multiply (independence assumption), not be
  // ignored beyond the first predicate.
  Table t("mp", Schema({{"mp_a", DataType::kInt64, 0},
                        {"mp_b", DataType::kInt64, 0}}));
  for (int64_t i = 0; i < 10000; ++i) {
    t.column(0).AppendInt64(i % 100);
    t.column(1).AppendInt64(i % 10);
    t.FinishRow();
  }
  // No predicate: exact.
  EXPECT_EQ(ScanTable(&t)->EstimateRows(), 10000u);
  // One predicate: a >= 50 keeps half the domain.
  auto one = ScanTable(&t, {ScanPredicate::GeI("mp_a", 50)});
  EXPECT_EQ(one->EstimateRows(), 5000u);
  // Both predicates: 0.5 * 0.1 of the table.
  auto both = ScanTable(&t, {ScanPredicate::GeI("mp_a", 50),
                             ScanPredicate::EqI("mp_b", 3)});
  EXPECT_EQ(both->EstimateRows(), 500u);
  // Estimates never drop below one row.
  auto rare = ScanTable(&t, {ScanPredicate::EqI("mp_a", 3),
                             ScanPredicate::EqI("mp_b", 3),
                             ScanPredicate::LtI("mp_b", 1)});
  EXPECT_GE(rare->EstimateRows(), 1u);
}

TEST(Executor, JoinAuditsMeasureSides) {
  Table dim = SmallTable("d", "d", 100);
  Table fact = SmallTable("f", "f", 50000);
  auto plan = Aggregate(
      Join(ScanTable(&dim), ScanTable(&fact), {{"d_key", "f_key"}}), {},
      {AggDef::CountStar("n")});
  ExecOptions options;
  options.join_strategy = JoinStrategy::kBRJ;
  QueryStats stats;
  ExecuteQuery(*plan, options, &stats);
  ASSERT_EQ(stats.join_audits.size(), 1u);
  const JoinAudit& audit = stats.join_audits[0];
  EXPECT_EQ(audit.join_id, 0);
  EXPECT_EQ(audit.strategy, JoinStrategy::kBRJ);
  EXPECT_EQ(audit.build_tuples, 100u);
  EXPECT_EQ(audit.probe_tuples, 50000u);
  // fact keys 0..49999 but dim holds only 0..99 — ~0.2% match.
  EXPECT_NEAR(audit.match_fraction(), 0.002, 0.002);
  EXPECT_EQ(audit.build_width, 8u);  // only d_key is required
}

TEST(Executor, AuditsOrderedPostOrderAcrossSteps) {
  auto db = GenerateTpch(0.01);
  ThreadPool pool(1);
  const TpchQuery& q2 = GetTpchQuery(2);
  ExecOptions options;
  options.num_threads = 1;
  QueryStats stats;
  q2.run(*db, options, &stats, &pool);
  ASSERT_EQ(static_cast<int>(stats.join_audits.size()), q2.num_joins);
  for (int j = 0; j < q2.num_joins; ++j) {
    EXPECT_EQ(stats.join_audits[j].join_id, j);
  }
}

TEST(Executor, ThroughputMetricCountsSources) {
  Table dim = SmallTable("d2", "d2", 100);
  Table fact = SmallTable("f2", "f2", 5000);
  auto plan = Aggregate(
      Join(ScanTable(&dim), ScanTable(&fact), {{"d2_key", "f2_key"}}), {},
      {AggDef::CountStar("n")});
  QueryStats stats;
  ExecuteQuery(*plan, ExecOptions{}, &stats);
  // Footnote 5 of the paper: tablescan + tablescan + result scan.
  EXPECT_EQ(stats.source_tuples, 5100u);
  EXPECT_EQ(stats.result_rows, 1u);
}

TEST(Executor, RadixAblationTogglesStillCorrect) {
  Table dim = SmallTable("d3", "d3", 5000);
  Table fact = SmallTable("f3", "f3", 100000);
  auto make_plan = [&] {
    return Aggregate(
        Join(ScanTable(&dim), ScanTable(&fact), {{"d3_key", "f3_key"}}), {},
        {AggDef::CountStar("n"), AggDef::Sum("f3_pay", "s")});
  };
  ExecOptions base;
  base.join_strategy = JoinStrategy::kRJ;
  QueryResult reference = ExecuteQuery(*make_plan(), base);

  for (int variant = 0; variant < 4; ++variant) {
    ExecOptions options = base;
    options.use_swwcb = (variant & 1) != 0;
    options.use_streaming = (variant & 2) != 0 && options.use_swwcb;
    QueryResult result = ExecuteQuery(*make_plan(), options);
    EXPECT_TRUE(result.ApproxEquals(reference)) << "variant " << variant;
  }
  // Manual radix-bit overrides (single-pass and deep two-pass).
  for (auto [b1, b2] : {std::pair{3, 0}, std::pair{2, 6}, std::pair{0, 4}}) {
    ExecOptions options = base;
    options.radix_bits1 = b1;
    options.radix_bits2 = b2;
    QueryResult result = ExecuteQuery(*make_plan(), options);
    EXPECT_TRUE(result.ApproxEquals(reference)) << b1 << "/" << b2;
  }
}

}  // namespace
}  // namespace pjoin
