// Tests for the table-scan predicate descriptors and their evaluator.
#include <gtest/gtest.h>

#include "engine/predicate.h"
#include "storage/table.h"

namespace pjoin {
namespace {

class PredicateTest : public ::testing::Test {
 protected:
  PredicateTest()
      : table_("t", Schema({{"i", DataType::kInt64, 0},
                            {"d", DataType::kDate, 0},
                            {"f", DataType::kFloat64, 0},
                            {"s", DataType::kChar, 10},
                            {"i2", DataType::kInt64, 0}})) {
    auto add = [&](int64_t i, int32_t d, double f, const std::string& s,
                   int64_t i2) {
      table_.column(0).AppendInt64(i);
      table_.column(1).AppendInt32(d);
      table_.column(2).AppendFloat64(f);
      table_.column(3).AppendString(s);
      table_.column(4).AppendInt64(i2);
      table_.FinishRow();
    };
    add(1, MakeDate(1994, 1, 1), 0.5, "MAIL", 2);
    add(5, MakeDate(1995, 6, 15), 1.5, "SHIP", 5);
    add(10, MakeDate(1996, 12, 31), 2.5, "AIR BOX", 3);
    add(-3, MakeDate(1992, 1, 1), -1.0, "REG AIR", -3);
  }

  int Count(const ScanPredicate& pred) {
    int n = 0;
    for (uint64_t r = 0; r < table_.num_rows(); ++r) {
      n += EvalPredicate(pred, table_, r) ? 1 : 0;
    }
    return n;
  }

  Table table_;
};

TEST_F(PredicateTest, IntComparisons) {
  EXPECT_EQ(Count(ScanPredicate::EqI("i", 5)), 1);
  EXPECT_EQ(Count(ScanPredicate::NeI("i", 5)), 3);
  EXPECT_EQ(Count(ScanPredicate::LtI("i", 5)), 2);
  EXPECT_EQ(Count(ScanPredicate::LeI("i", 5)), 3);
  EXPECT_EQ(Count(ScanPredicate::GtI("i", 1)), 2);
  EXPECT_EQ(Count(ScanPredicate::GeI("i", 1)), 3);
  EXPECT_EQ(Count(ScanPredicate::BetweenI("i", 1, 5)), 2);
  EXPECT_EQ(Count(ScanPredicate::InI("i", {1, 10, 99})), 2);
}

TEST_F(PredicateTest, DateComparisons) {
  EXPECT_EQ(Count(ScanPredicate::BetweenI("d", MakeDate(1994, 1, 1),
                                          MakeDate(1995, 12, 31))),
            2);
  EXPECT_EQ(Count(ScanPredicate::LtI("d", MakeDate(1993, 1, 1))), 1);
}

TEST_F(PredicateTest, DoubleComparisons) {
  EXPECT_EQ(Count(ScanPredicate::GtD("f", 0.0)), 3);
  EXPECT_EQ(Count(ScanPredicate::LtD("f", 1.0)), 2);
  EXPECT_EQ(Count(ScanPredicate::BetweenD("f", 0.5, 1.5)), 2);
}

TEST_F(PredicateTest, StringOps) {
  EXPECT_EQ(Count(ScanPredicate::StrEq("s", "MAIL")), 1);
  EXPECT_EQ(Count(ScanPredicate::StrNe("s", "MAIL")), 3);
  EXPECT_EQ(Count(ScanPredicate::StrPrefix("s", "AIR")), 1);
  EXPECT_EQ(Count(ScanPredicate::StrSuffix("s", "AIR")), 1);
  EXPECT_EQ(Count(ScanPredicate::StrContains("s", "AIR")), 2);
  EXPECT_EQ(Count(ScanPredicate::StrNotContains("s", "AIR")), 2);
  EXPECT_EQ(Count(ScanPredicate::StrIn("s", {"MAIL", "SHIP"})), 2);
}

TEST_F(PredicateTest, StringPaddingIgnored) {
  // Cells are space padded to width 10; trimmed comparison must not see it.
  EXPECT_EQ(Count(ScanPredicate::StrEq("s", "MAIL      ")), 0);
  EXPECT_EQ(Count(ScanPredicate::StrSuffix("s", "BOX")), 1);
}

TEST_F(PredicateTest, ColumnColumnComparisons) {
  EXPECT_EQ(Count(ScanPredicate::ColLt("i", "i2")), 1);   // 1 < 2
  EXPECT_EQ(Count(ScanPredicate::ColNe("i", "i2")), 2);   // rows 0 and 2
}

TEST_F(PredicateTest, EmptySetsMatchNothing) {
  EXPECT_EQ(Count(ScanPredicate::InI("i", {})), 0);
  EXPECT_EQ(Count(ScanPredicate::StrIn("s", {})), 0);
}

}  // namespace
}  // namespace pjoin
