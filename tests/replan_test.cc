// Tests for mid-query adaptive re-planning (PJOIN_REPLAN_QERROR).
//
// Re-planning generalizes the build-overflow guardrail: with the trigger
// armed, every advised join defers its engine decision from the build sink's
// Finish to the probe sink's Prepare, publishes observed cardinalities into
// ExecContext, and re-costs the partition-or-not question when the estimate's
// q-error crosses the threshold. The tests inject estimate corruption through
// AdvisorOptions::est_scale (the PJOIN_EST_SCALE fault knob) and check
//   * both switch directions (misled-partitioned -> BHJ, misled-BHJ ->
//     partitioned),
//   * bit-identical results with re-planning off vs on across all 8 join
//     kinds and both corruption directions,
//   * cardinality feedback flowing up a join chain,
//   * off-by-default (the legacy guardrail semantics are unchanged).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/advisor.h"
#include "engine/executor.h"
#include "engine/explain.h"
#include "engine/plan.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace pjoin {
namespace {

const JoinKind kAllKinds[] = {
    JoinKind::kInner,      JoinKind::kProbeSemi, JoinKind::kProbeAnti,
    JoinKind::kBuildSemi,  JoinKind::kBuildAnti, JoinKind::kLeftOuter,
    JoinKind::kRightOuter, JoinKind::kMark,
};

Table MakeTable(const std::string& name, const std::string& prefix,
                const IntRows& rows, int cols) {
  std::vector<ColumnDef> defs;
  for (int c = 0; c < cols; ++c) {
    defs.push_back({prefix + std::to_string(c), DataType::kInt64, 0});
  }
  Table t(name, Schema(std::move(defs)));
  t.Reserve(rows.size());
  for (const auto& row : rows) {
    for (int c = 0; c < cols; ++c) t.column(c).AppendInt64(row[c]);
    t.FinishRow();
  }
  return t;
}

IntRows KeyedRows(uint64_t rows, uint64_t universe, uint64_t seed,
                  int cols = 2) {
  Rng rng(seed);
  IntRows out;
  out.reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    std::vector<int64_t> row(cols);
    row[0] = static_cast<int64_t>(rng.Below(universe));
    for (int c = 1; c < cols; ++c) {
      row[c] = static_cast<int64_t>(rng.Next() & 0xFFFF);
    }
    out.push_back(std::move(row));
  }
  return out;
}

std::unique_ptr<PlanNode> CountPlan(const Table* build, const Table* probe,
                                    JoinKind kind) {
  auto join = Join(ScanTable(build), ScanTable(probe), {{"b0", "p0"}}, kind,
                   kind == JoinKind::kMark ? "mark" : "");
  std::vector<std::string> group_by;
  for (const auto& col : join->OutputColumns()) group_by.push_back(col.name);
  return Aggregate(std::move(join), std::move(group_by),
                   {AggDef::CountStar("n")});
}

// Pinned cost-model caches plus a margin that forces a partitioned pick for
// any build the L2 rule does not catch — so the decision depends only on
// whether the (possibly corrupted) build estimate fits the modeled L2, and
// both switch directions can be staged deterministically.
ExecOptions ReplanOptions(double est_scale, double threshold = 2.0) {
  ExecOptions options;
  options.join_strategy = JoinStrategy::kAuto;
  options.num_threads = 2;
  options.advisor.l2_bytes = 64 << 10;
  options.advisor.llc_bytes = 1 << 20;
  options.advisor.partition_margin = 1000.0;
  options.advisor.est_scale = est_scale;
  options.advisor.replan_qerror = threshold;
  return options;
}

TEST(Replan, DisabledByDefaultKeepsLegacyGuardrail) {
  Table build = MakeTable("rd_b", "b", KeyedRows(2000, 500, 11), 2);
  Table probe = MakeTable("rd_p", "p", KeyedRows(8000, 1000, 12), 2);
  auto plan = CountPlan(&build, &probe, JoinKind::kInner);

  ExecOptions options = ReplanOptions(/*est_scale=*/1.0);
  options.advisor.replan_qerror = 0.0;  // explicit off (also the default)
  QueryStats stats;
  ExecuteQuery(*plan, options, &stats);
  const JoinMetrics* jm = stats.metrics.FindJoin(0);
  ASSERT_NE(jm, nullptr);
  EXPECT_FALSE(jm->replan.enabled);
  EXPECT_EQ(stats.metrics.ToJson(false).find("\"replan\""), std::string::npos);
}

TEST(Replan, OverestimateSwitchesPartitionedPlanToBHJ) {
  // Truth: a 1200-row build fits the modeled 64KiB L2 (48-byte ht entries ->
  // ~57KiB). The x64 corruption makes the advisor see 76800 rows ->
  // partitioned. The re-plan observes staged=1200 (q-error 64), re-costs,
  // and the L2 rule sends the join to BHJ — a switch, not an overflow
  // fallback.
  Table build = MakeTable("ro_b", "b", KeyedRows(1200, 500, 21), 2);
  Table probe = MakeTable("ro_p", "p", KeyedRows(20000, 1000, 22), 1);
  auto plan = CountPlan(&build, &probe, JoinKind::kInner);

  ExecOptions bhj;
  bhj.join_strategy = JoinStrategy::kBHJ;
  bhj.num_threads = 2;
  QueryResult reference = ExecuteQuery(*CountPlan(&build, &probe,
                                                  JoinKind::kInner),
                                       bhj);

  QueryStats stats;
  QueryResult result =
      ExecuteQuery(*plan, ReplanOptions(/*est_scale=*/64.0), &stats);
  EXPECT_TRUE(result.ApproxEquals(reference));

  const JoinMetrics* jm = stats.metrics.FindJoin(0);
  ASSERT_NE(jm, nullptr);
  ASSERT_TRUE(jm->advisor.present);
  EXPECT_NE(jm->advisor.choice, JoinStrategy::kBHJ);  // misled static plan
  ASSERT_TRUE(jm->replan.enabled);
  EXPECT_TRUE(jm->replan.triggered);
  EXPECT_TRUE(jm->replan.switched);
  EXPECT_EQ(jm->replan.final_choice, JoinStrategy::kBHJ);
  EXPECT_GE(jm->replan.qerror_build, 32.0);
  EXPECT_EQ(jm->replan.staged_build_tuples, 1200u);
  EXPECT_TRUE(jm->has_hash_table);   // the BHJ engine ran
  EXPECT_FALSE(jm->has_partitions);  // the radix join never finalized
  // A re-plan switch is not the overflow guardrail: the legacy fallback
  // flag stays clear in metrics and JSON.
  EXPECT_FALSE(jm->advisor.fell_back);
  const std::string json = stats.metrics.ToJson(false);
  EXPECT_NE(json.find("\"replan\""), std::string::npos);
  EXPECT_NE(json.find("\"fell_back\":false"), std::string::npos);

  // EXPLAIN ANALYZE: the advisor line carries the estimate quality (the x64
  // build corruption is a mispredict) and the replan line shows the switch;
  // a replan switch is not the legacy guardrail fallback.
  const std::string text =
      ExplainAnalyzePlan(*plan, ReplanOptions(/*est_scale=*/64.0), stats);
  EXPECT_NE(text.find(" qerr[build="), std::string::npos);
  EXPECT_NE(text.find(" MISPREDICT"), std::string::npos);
  EXPECT_NE(text.find("replan: plan="), std::string::npos);
  EXPECT_NE(text.find("final=BHJ"), std::string::npos);
  EXPECT_NE(text.find("(triggered, switched)"), std::string::npos);
  EXPECT_EQ(text.find("fell back"), std::string::npos);
}

TEST(Replan, UnderestimateSwitchesBHJPlanToPartitioned) {
  // Truth: a 40000-row build overflows the modeled L2. The /64 corruption
  // makes the advisor see 625 rows -> "build fits L2" -> BHJ. The re-plan
  // observes staged=40000 and the forced margin partitions it.
  Table build = MakeTable("ru_b", "b", KeyedRows(40000, 10000, 31), 2);
  Table probe = MakeTable("ru_p", "p", KeyedRows(80000, 20000, 32), 1);
  auto plan = CountPlan(&build, &probe, JoinKind::kInner);

  ExecOptions bhj;
  bhj.join_strategy = JoinStrategy::kBHJ;
  bhj.num_threads = 2;
  QueryResult reference = ExecuteQuery(*CountPlan(&build, &probe,
                                                  JoinKind::kInner),
                                       bhj);

  QueryStats stats;
  QueryResult result =
      ExecuteQuery(*plan, ReplanOptions(/*est_scale=*/1.0 / 64.0), &stats);
  EXPECT_TRUE(result.ApproxEquals(reference));

  const JoinMetrics* jm = stats.metrics.FindJoin(0);
  ASSERT_NE(jm, nullptr);
  ASSERT_TRUE(jm->advisor.present);
  EXPECT_EQ(jm->advisor.choice, JoinStrategy::kBHJ);  // misled static plan
  ASSERT_TRUE(jm->replan.enabled);
  EXPECT_TRUE(jm->replan.triggered);
  EXPECT_TRUE(jm->replan.switched);
  EXPECT_NE(jm->replan.final_choice, JoinStrategy::kBHJ);
  EXPECT_EQ(jm->replan.staged_build_tuples, 40000u);
  EXPECT_TRUE(jm->has_partitions);  // the radix engine finalized and ran
  EXPECT_FALSE(jm->advisor.fell_back);
}

TEST(Replan, AccurateEstimateConfirmsPlan) {
  // No corruption: the q-error stays ~1, the trigger never fires, and the
  // deferred decision confirms whatever the plan chose.
  Table build = MakeTable("rc_b", "b", KeyedRows(40000, 10000, 41), 2);
  Table probe = MakeTable("rc_p", "p", KeyedRows(80000, 20000, 42), 1);
  auto plan = CountPlan(&build, &probe, JoinKind::kInner);

  QueryStats stats;
  ExecuteQuery(*plan, ReplanOptions(/*est_scale=*/1.0), &stats);
  const JoinMetrics* jm = stats.metrics.FindJoin(0);
  ASSERT_NE(jm, nullptr);
  ASSERT_TRUE(jm->replan.enabled);
  EXPECT_FALSE(jm->replan.triggered);
  EXPECT_FALSE(jm->replan.switched);
  EXPECT_LT(jm->replan.qerror_build, 2.0);
  EXPECT_EQ(jm->replan.final_choice, jm->advisor.choice);
}

TEST(Replan, FeedbackCorrectsDownstreamProbeEstimate) {
  // Left-deep chain: the outer join's probe side is the inner join. The
  // inner join publishes its build-ratio-corrected output estimate before
  // the outer join resolves, so the outer join's probe q-error reflects the
  // same x8 corruption even though its own probe actual is not yet counted.
  Table dim1 = MakeTable("rf_d1", "d", KeyedRows(200, 200, 51, 1), 1);
  Table dim2 = MakeTable("rf_d2", "e", KeyedRows(400, 400, 52, 1), 1);
  IntRows fact_rows;
  Rng rng(53);
  for (int64_t i = 0; i < 20000; ++i) {
    fact_rows.push_back({static_cast<int64_t>(rng.Below(400)),
                         static_cast<int64_t>(rng.Below(800))});
  }
  Table fact = MakeTable("rf_f", "f", fact_rows, 2);

  auto make_plan = [&] {
    auto inner = Join(ScanTable(&dim2), ScanTable(&fact), {{"e0", "f1"}});
    auto outer = Join(ScanTable(&dim1), std::move(inner), {{"d0", "f0"}});
    return Aggregate(std::move(outer), {}, {AggDef::CountStar("n")});
  };

  ExecOptions bhj;
  bhj.join_strategy = JoinStrategy::kBHJ;
  bhj.num_threads = 2;
  QueryResult reference = ExecuteQuery(*make_plan(), bhj);

  QueryStats stats;
  QueryResult result =
      ExecuteQuery(*make_plan(), ReplanOptions(/*est_scale=*/8.0), &stats);
  EXPECT_TRUE(result.ApproxEquals(reference));

  const JoinMetrics* outer_jm = stats.metrics.FindJoin(1);
  ASSERT_NE(outer_jm, nullptr);
  ASSERT_TRUE(outer_jm->replan.enabled);
  // The inner join staged 1/8 of its corrupted estimate and said so; the
  // outer join's corrected probe estimate carries that ratio.
  EXPECT_GE(outer_jm->replan.qerror_probe, 4.0);
  EXPECT_LT(outer_jm->replan.corrected_probe_tuples,
            outer_jm->advisor.est_probe_tuples);
}

// Differential sweep: for every join kind and both corruption directions,
// the re-planned run must produce results identical to manual BHJ and to the
// same kAuto run with re-planning off.
class ReplanDifferentialTest : public ::testing::TestWithParam<JoinKind> {};

TEST_P(ReplanDifferentialTest, BitIdenticalOnAndOff) {
  const JoinKind kind = GetParam();
  Table build = MakeTable("rdiff_b", "b", KeyedRows(8000, 2000, 61), 2);
  Table probe = MakeTable("rdiff_p", "p", KeyedRows(16000, 4000, 62), 2);

  ExecOptions bhj;
  bhj.join_strategy = JoinStrategy::kBHJ;
  bhj.num_threads = 2;
  QueryResult reference = ExecuteQuery(*CountPlan(&build, &probe, kind), bhj);

  for (double scale : {1.0 / 16.0, 1.0, 16.0}) {
    SCOPED_TRACE("est_scale=" + std::to_string(scale));
    ExecOptions off = ReplanOptions(scale);
    off.advisor.replan_qerror = 0.0;
    QueryResult off_result =
        ExecuteQuery(*CountPlan(&build, &probe, kind), off);
    EXPECT_TRUE(off_result.ApproxEquals(reference)) << "replan off";

    QueryStats stats;
    QueryResult on_result = ExecuteQuery(*CountPlan(&build, &probe, kind),
                                         ReplanOptions(scale), &stats);
    EXPECT_TRUE(on_result.ApproxEquals(reference)) << "replan on";
    const JoinMetrics* jm = stats.metrics.FindJoin(0);
    ASSERT_NE(jm, nullptr);
    EXPECT_TRUE(jm->replan.enabled);
    if (scale != 1.0) {
      EXPECT_TRUE(jm->replan.triggered);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ReplanDifferentialTest, ::testing::ValuesIn(kAllKinds),
    [](const ::testing::TestParamInfo<JoinKind>& info) {
      std::string name = JoinKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace pjoin
