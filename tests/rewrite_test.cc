// Tests for the algebraic rewrite pass (src/rewrite): per-rule units for
// predicate pushdown legality, the Bloom-pushdown cost gate, DPsize join
// reordering checked against exhaustive enumeration, golden EXPLAIN and
// metrics-JSON surfaces, and the rewrite-equivalence differential fuzz
// suite driving random multi-join plans against the interpreter oracle.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/explain.h"
#include "engine/plan.h"
#include "exec/thread_pool.h"
#include "rewrite/rewrite.h"
#include "stats/stats_catalog.h"
#include "tests/test_util.h"
#include "util/env.h"
#include "util/rng.h"

namespace pjoin {
namespace {

// --- shared helpers ------------------------------------------------------

const PlanNode* FindNode(const PlanNode* n,
                         bool (*pred)(const PlanNode&, const std::string&),
                         const std::string& arg) {
  if (n == nullptr) return nullptr;
  if (pred(*n, arg)) return n;
  for (const PlanNode* c : {n->child.get(), n->build.get(), n->probe.get()}) {
    if (const PlanNode* hit = FindNode(c, pred, arg)) return hit;
  }
  return nullptr;
}

const PlanNode* FindFilter(const PlanNode* root, const std::string& label) {
  return FindNode(
      root,
      [](const PlanNode& n, const std::string& l) {
        return n.kind == PlanNode::Kind::kFilter && n.filter.label == l;
      },
      label);
}

const PlanNode* FindScan(const PlanNode* root, const std::string& table) {
  return FindNode(
      root,
      [](const PlanNode& n, const std::string& t) {
        return n.kind == PlanNode::Kind::kScan && n.table->name() == t;
      },
      table);
}

int CountBloomProbes(const PlanNode& n) {
  int count = static_cast<int>(n.bloom_probes.size());
  for (const PlanNode* c : {n.child.get(), n.build.get(), n.probe.get()}) {
    if (c != nullptr) count += CountBloomProbes(*c);
  }
  return count;
}

// keep rows where column % modulus != 0 (same shape the fuzz generator
// registers, reused here for hand-built plans).
FilterDef ModFilter(const std::string& column, int64_t m) {
  FilterDef def;
  def.label = column + "%" + std::to_string(m);
  def.inputs = {column};
  def.fn = [m](const RowLayout& l, const std::byte* row, const int* f) {
    return l.GetNumeric(row, f[0]) % m != 0;
  };
  return def;
}

// QueryResult rows (canonically sorted) as int64 rows; fails the calling
// test if any value is not an int64.
IntRows ResultRows(const QueryResult& r) {
  IntRows rows;
  for (const auto& vr : r.rows) {
    std::vector<int64_t> row;
    for (const auto& v : vr) {
      EXPECT_TRUE(std::holds_alternative<int64_t>(v));
      row.push_back(std::get<int64_t>(v));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

// --- fixtures ------------------------------------------------------------

// Chain fixture for pushdown/bloom units: dim(40 keys, half of mid's m_k
// domain) joins mid(400 rows) joins big(4000 rows). The outer join's probe
// key m_k lives one join below, so a planted Bloom filter is "distant".
class RewriteTest : public ::testing::Test {
 protected:
  RewriteTest()
      : dim_("rw_dim", Schema({{"d_k", DataType::kInt64, 0},
                               {"d_v", DataType::kInt64, 0}})),
        dim_full_("rw_dimf", Schema({{"df_k", DataType::kInt64, 0}})),
        mid_("rw_mid", Schema({{"m_k", DataType::kInt64, 0},
                               {"m_f", DataType::kInt64, 0},
                               {"m_v", DataType::kInt64, 0}})),
        big_("rw_big", Schema({{"b_f", DataType::kInt64, 0},
                               {"b_v", DataType::kInt64, 0}})) {
    for (int64_t k = 0; k < 40; ++k) {
      dim_.column(0).AppendInt64(k);
      dim_.column(1).AppendInt64(k % 7);
      dim_.FinishRow();
    }
    for (int64_t k = 0; k < 80; ++k) {
      dim_full_.column(0).AppendInt64(k);
      dim_full_.FinishRow();
    }
    Rng rng(11);
    for (int64_t i = 0; i < 400; ++i) {
      mid_.column(0).AppendInt64(static_cast<int64_t>(rng.Below(80)));
      mid_.column(1).AppendInt64(static_cast<int64_t>(rng.Below(200)));
      mid_.column(2).AppendInt64(static_cast<int64_t>(rng.Next() & 0xFF));
      mid_.FinishRow();
    }
    for (int64_t i = 0; i < 4000; ++i) {
      big_.column(0).AppendInt64(static_cast<int64_t>(rng.Below(200)));
      big_.column(1).AppendInt64(static_cast<int64_t>(rng.Next() & 0xFF));
      big_.FinishRow();
    }
  }

  ~RewriteTest() override { StatsCatalog::Global().Invalidate(); }

  // Agg( outer(build=dim, probe=inner(build=mid, probe=big)) ).
  std::unique_ptr<PlanNode> ChainPlan(JoinKind outer = JoinKind::kInner,
                                      JoinKind inner = JoinKind::kInner) {
    auto lower = Join(ScanTable(&mid_), ScanTable(&big_), {{"m_f", "b_f"}},
                      inner, inner == JoinKind::kMark ? "imk" : "");
    auto upper = Join(ScanTable(&dim_), std::move(lower), {{"d_k", "m_k"}},
                      outer, outer == JoinKind::kMark ? "omk" : "");
    return Aggregate(std::move(upper), {},
                     {AggDef::CountStar("n"), AggDef::Sum("b_v", "s")});
  }

  static RewriteOptions BloomOnly() {
    RewriteOptions o;
    o.enabled = 1;
    o.predicate_pushdown = false;
    o.join_reorder = false;
    return o;
  }
  static RewriteOptions PushdownOnly() {
    RewriteOptions o;
    o.enabled = 1;
    o.join_reorder = false;
    o.bloom_pushdown = false;
    return o;
  }

  Table dim_;
  Table dim_full_;
  Table mid_;
  Table big_;
};

// --- predicate pushdown legality -----------------------------------------

TEST_F(RewriteTest, PushdownSinksFilterTwoJoinsDownToScan) {
  // A mid-column filter above both joins must sink through the outer probe
  // side and the inner build side, landing directly on the mid scan.
  auto plan = ChainPlan();
  auto filtered = Aggregate(
      Filter(std::move(plan->child), ModFilter("m_v", 2)), {},
      {AggDef::CountStar("n")});
  RewriteResult res = RewritePlan(*filtered, PushdownOnly());
  ASSERT_NE(res.plan, nullptr);
  EXPECT_TRUE(res.info.changed);
  EXPECT_EQ(res.info.filters_pushed, 1);
  EXPECT_EQ(res.info.RulesLine(), "pushdown");
  const PlanNode* f = FindFilter(res.plan.get(), "m_v%2");
  ASSERT_NE(f, nullptr);
  ASSERT_NE(f->child, nullptr);
  EXPECT_EQ(f->child->kind, PlanNode::Kind::kScan);
  EXPECT_EQ(f->child->table->name(), "rw_mid");
}

TEST_F(RewriteTest, PushdownKeepsFilterAboveLeftOuterPaddedSide) {
  // d_v sits on the null-padded build side of a left-outer join: pushing
  // the filter below would stop unmatched probe rows (which carry d_v = 0)
  // from being filtered, so the pass must decline entirely.
  auto join = Join(ScanTable(&dim_), ScanTable(&mid_), {{"d_k", "m_k"}},
                   JoinKind::kLeftOuter);
  auto plan = Aggregate(Filter(std::move(join), ModFilter("d_v", 3)), {},
                        {AggDef::CountStar("n")});
  RewriteResult res = RewritePlan(*plan, PushdownOnly());
  EXPECT_EQ(res.plan, nullptr);
  EXPECT_FALSE(res.info.changed);
  EXPECT_EQ(res.info.filters_pushed, 0);
}

TEST_F(RewriteTest, PushdownRightOuterLegalOnBuildIllegalOnProbe) {
  // kRightOuter preserves the build side (legal sink) and null-pads the
  // probe side (illegal sink); one plan with both filters shows the split.
  auto join = Join(ScanTable(&dim_), ScanTable(&mid_), {{"d_k", "m_k"}},
                   JoinKind::kRightOuter);
  auto plan = Aggregate(
      Filter(Filter(std::move(join), ModFilter("d_v", 3)),
             ModFilter("m_v", 2)),
      {}, {AggDef::CountStar("n")});
  RewriteResult res = RewritePlan(*plan, PushdownOnly());
  ASSERT_NE(res.plan, nullptr);
  EXPECT_EQ(res.info.filters_pushed, 1);
  const PlanNode* pushed = FindFilter(res.plan.get(), "d_v%3");
  ASSERT_NE(pushed, nullptr);
  EXPECT_EQ(pushed->child->kind, PlanNode::Kind::kScan);
  EXPECT_EQ(pushed->child->table->name(), "rw_dim");
  const PlanNode* kept = FindFilter(res.plan.get(), "m_v%2");
  ASSERT_NE(kept, nullptr);
  EXPECT_NE(kept->child->kind, PlanNode::Kind::kScan);
}

TEST_F(RewriteTest, PushdownSinksIntoProbeOfSemiAndAntiJoins) {
  for (JoinKind kind : {JoinKind::kProbeSemi, JoinKind::kProbeAnti}) {
    auto join =
        Join(ScanTable(&dim_), ScanTable(&mid_), {{"d_k", "m_k"}}, kind);
    auto plan = Aggregate(Filter(std::move(join), ModFilter("m_v", 2)), {},
                          {AggDef::CountStar("n")});
    RewriteResult res = RewritePlan(*plan, PushdownOnly());
    ASSERT_NE(res.plan, nullptr) << JoinKindName(kind);
    const PlanNode* f = FindFilter(res.plan.get(), "m_v%2");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->child->kind, PlanNode::Kind::kScan) << JoinKindName(kind);
  }
  // ...but the null-padded build side of those kinds must stay put.
  for (JoinKind kind : {JoinKind::kProbeSemi, JoinKind::kProbeAnti}) {
    auto join =
        Join(ScanTable(&dim_), ScanTable(&mid_), {{"d_k", "m_k"}}, kind);
    auto plan = Aggregate(Filter(std::move(join), ModFilter("d_v", 3)), {},
                          {AggDef::CountStar("n")});
    RewriteResult res = RewritePlan(*plan, PushdownOnly());
    EXPECT_EQ(res.plan, nullptr) << JoinKindName(kind);
  }
}

TEST_F(RewriteTest, MarkColumnFilterStaysAboveItsJoin) {
  // The mark column only exists above the mark join; no scan provides it.
  auto join = Join(ScanTable(&dim_), ScanTable(&mid_), {{"d_k", "m_k"}},
                   JoinKind::kMark, "has_dim");
  auto plan = Aggregate(Filter(std::move(join), ModFilter("has_dim", 2)), {},
                        {AggDef::CountStar("n")});
  RewriteResult res = RewritePlan(*plan, PushdownOnly());
  EXPECT_EQ(res.plan, nullptr);
  EXPECT_FALSE(res.info.changed);
}

// --- Bloom pushdown and its cost gate ------------------------------------

TEST_F(RewriteTest, BloomPlantedOnDistantProbeScan) {
  auto plan = ChainPlan();
  RewriteResult res = RewritePlan(*plan, BloomOnly());
  ASSERT_NE(res.plan, nullptr);
  EXPECT_EQ(res.info.blooms_planted, 1);
  EXPECT_EQ(res.info.RulesLine(), "bloom");
  const PlanNode* scan = FindScan(res.plan.get(), "rw_mid");
  ASSERT_NE(scan, nullptr);
  ASSERT_EQ(scan->bloom_probes.size(), 1u);
  EXPECT_EQ(scan->bloom_probes[0].probe_column, "m_k");
  EXPECT_EQ(scan->bloom_probes[0].build_column, "d_k");
  // Post-order ids: lower join = 0, upper (planting) join = 1.
  EXPECT_EQ(scan->bloom_probes[0].source_join, 1);
  const PlanNode* root_join = res.plan->child.get();
  ASSERT_EQ(root_join->kind, PlanNode::Kind::kJoin);
  ASSERT_EQ(root_join->bloom_builds.size(), 1u);
  EXPECT_EQ(root_join->bloom_builds[0].id, scan->bloom_probes[0].id);
}

TEST_F(RewriteTest, BloomSkipsImmediateProbeScan) {
  // A single join has no intermediate join to shield: the BRJ's own filter
  // already covers the immediate probe scan, so nothing is planted.
  auto join = Join(ScanTable(&dim_), ScanTable(&mid_), {{"d_k", "m_k"}});
  auto plan =
      Aggregate(std::move(join), {}, {AggDef::CountStar("n")});
  RewriteResult res = RewritePlan(*plan, BloomOnly());
  EXPECT_EQ(res.plan, nullptr);
  EXPECT_EQ(res.info.blooms_planted, 0);
}

TEST_F(RewriteTest, BloomGateRejectsLargeBuildSide) {
  RewriteOptions o = BloomOnly();
  o.bloom_max_build = 10;  // dim's 40 rows exceed the cap
  RewriteResult res = RewritePlan(*ChainPlan(), o);
  EXPECT_EQ(res.plan, nullptr);
  EXPECT_EQ(res.info.blooms_planted, 0);
}

TEST_F(RewriteTest, BloomGateRejectsUnselectiveBuild) {
  // dim_full covers mid's whole m_k domain: estimated pass rate 1.0 means
  // the filter would drop nothing and the gate declines.
  auto lower = Join(ScanTable(&mid_), ScanTable(&big_), {{"m_f", "b_f"}});
  auto upper =
      Join(ScanTable(&dim_full_), std::move(lower), {{"df_k", "m_k"}});
  auto plan =
      Aggregate(std::move(upper), {}, {AggDef::CountStar("n")});
  RewriteResult res = RewritePlan(*plan, BloomOnly());
  EXPECT_EQ(res.info.blooms_planted, 0);
}

TEST_F(RewriteTest, BloomIllegalAtProbePreservingJoinKinds) {
  // Kinds that keep (or mark) unmatched probe rows cannot drop probe tuples
  // early: kProbeAnti inverts the match, kLeftOuter pads it, kMark records
  // it. All three must decline the plant at the planting join.
  for (JoinKind kind :
       {JoinKind::kProbeAnti, JoinKind::kLeftOuter, JoinKind::kMark}) {
    RewriteResult res = RewritePlan(*ChainPlan(kind), BloomOnly());
    EXPECT_EQ(res.info.blooms_planted, 0) << JoinKindName(kind);
    if (res.plan != nullptr) {
      EXPECT_EQ(CountBloomProbes(*res.plan), 0) << JoinKindName(kind);
    }
  }
  // ...while probe-discarding kinds stay legal.
  for (JoinKind kind : {JoinKind::kProbeSemi, JoinKind::kRightOuter}) {
    RewriteResult res = RewritePlan(*ChainPlan(kind), BloomOnly());
    EXPECT_EQ(res.info.blooms_planted, 1) << JoinKindName(kind);
  }
}

TEST_F(RewriteTest, BloomIllegalThroughBuildPaddingIntermediateJoin) {
  // The target scan sits under the *build* side of the intermediate join.
  // A left-outer intermediate pads that side, so rows the Bloom filter
  // would drop still influence its output: no plant allowed.
  RewriteResult res =
      RewritePlan(*ChainPlan(JoinKind::kInner, JoinKind::kLeftOuter),
                  BloomOnly());
  EXPECT_EQ(res.info.blooms_planted, 0);
}

// --- join reordering: DPsize vs exhaustive enumeration -------------------

// Chain of up to five relations c0..c4 joined on ci_r = c(i+1)_l. The
// leading relations are the largest, so the index-order left-deep plan is
// deliberately expensive and the optimum joins the small tail first.
class RewriteDpTest : public ::testing::Test {
 protected:
  static constexpr int kRelations = 5;

  RewriteDpTest() {
    const int64_t rows[kRelations] = {900, 800, 30, 25, 40};
    const int64_t link_domain[kRelations - 1] = {8, 50, 12, 70};
    Rng rng(23);
    for (int i = 0; i < kRelations; ++i) {
      const std::string base = "rwc" + std::to_string(i);
      tables_.push_back(std::make_unique<Table>(
          base, Schema({{base + "_l", DataType::kInt64, 0},
                        {base + "_r", DataType::kInt64, 0}})));
      Table& t = *tables_.back();
      const int64_t dl = i > 0 ? link_domain[i - 1] : 4;
      const int64_t dr = i < kRelations - 1 ? link_domain[i] : 4;
      for (int64_t j = 0; j < rows[i]; ++j) {
        t.column(0).AppendInt64(static_cast<int64_t>(rng.Below(dl)));
        t.column(1).AppendInt64(static_cast<int64_t>(rng.Below(dr)));
        t.FinishRow();
      }
    }
  }

  ~RewriteDpTest() override { StatsCatalog::Global().Invalidate(); }

  std::string LinkR(int i) const { return "rwc" + std::to_string(i) + "_r"; }
  std::string LinkL(int i) const { return "rwc" + std::to_string(i) + "_l"; }

  std::unique_ptr<PlanNode> LeftDeep(int n) {
    auto tree = ScanTable(tables_[0].get());
    for (int i = 1; i < n; ++i) {
      tree = Join(std::move(tree), ScanTable(tables_[i].get()),
                  {{LinkR(i - 1), LinkL(i)}});
    }
    return Aggregate(std::move(tree), {}, {AggDef::CountStar("n")});
  }

  // Every bushy join tree over the chain segment [lo, hi]. A connected
  // split of a chain is a contiguous cut, so each split point yields
  // exactly one join edge and the key choice is unambiguous — the same
  // space the DP explores.
  std::vector<std::unique_ptr<PlanNode>> AllTrees(int lo, int hi) {
    std::vector<std::unique_ptr<PlanNode>> out;
    if (lo == hi) {
      out.push_back(ScanTable(tables_[lo].get()));
      return out;
    }
    for (int m = lo; m < hi; ++m) {
      auto lefts = AllTrees(lo, m);
      auto rights = AllTrees(m + 1, hi);
      for (const auto& l : lefts) {
        for (const auto& r : rights) {
          out.push_back(Join(l->Clone(), r->Clone(),
                             {{LinkR(m), LinkL(m + 1)}}));
        }
      }
    }
    return out;
  }

  uint64_t ExhaustiveBestCost(int n) {
    uint64_t best = ~0ull;
    for (const auto& tree : AllTrees(0, n - 1)) {
      best = std::min(best, EstimateJoinTreeCost(*tree));
    }
    return best;
  }

  static RewriteOptions ReorderOnly() {
    RewriteOptions o;
    o.enabled = 1;
    o.predicate_pushdown = false;
    o.bloom_pushdown = false;
    return o;
  }

  std::vector<std::unique_ptr<Table>> tables_;
};

TEST_F(RewriteDpTest, DpMatchesExhaustiveEnumeration) {
  int changed = 0;
  for (int n = 3; n <= kRelations; ++n) {
    auto plan = LeftDeep(n);
    RewriteResult res = RewritePlan(*plan, ReorderOnly());
    const PlanNode& final_plan = res.plan != nullptr ? *res.plan : *plan;
    EXPECT_EQ(EstimateJoinTreeCost(final_plan), ExhaustiveBestCost(n))
        << "n=" << n;
    if (res.plan != nullptr) {
      ++changed;
      EXPECT_EQ(res.info.dp_regions, 1) << "n=" << n;
      EXPECT_EQ(res.info.joins_reordered, n - 1) << "n=" << n;
      EXPECT_EQ(res.info.RulesLine(), "reorder_dp") << "n=" << n;
      EXPECT_FALSE(res.info.order.empty()) << "n=" << n;
    }
  }
  // The fixture is built so index order is suboptimal: at least one chain
  // length must actually reorder, or the test is vacuous.
  EXPECT_GE(changed, 1);
}

TEST_F(RewriteDpTest, GreedyFallbackAboveDpCap) {
  auto plan = LeftDeep(kRelations);
  RewriteOptions o = ReorderOnly();
  o.dp_cap = 2;  // 5 relations > cap: greedy left-deep fallback
  RewriteResult res = RewritePlan(*plan, o);
  ASSERT_NE(res.plan, nullptr);
  EXPECT_EQ(res.info.greedy_regions, 1);
  EXPECT_EQ(res.info.dp_regions, 0);
  EXPECT_EQ(res.info.RulesLine(), "reorder_greedy");
  // Greedy must still strictly improve on the deliberately bad order.
  EXPECT_LT(EstimateJoinTreeCost(*res.plan), EstimateJoinTreeCost(*plan));
}

TEST_F(RewriteDpTest, ReorderedChainExecutesIdentically) {
  auto plan = LeftDeep(kRelations);
  ExecOptions off;
  off.num_threads = 2;
  off.rewrite.enabled = 0;
  ExecOptions on = off;
  on.rewrite.enabled = 1;
  QueryResult r_off = ExecuteQuery(*plan, off);
  QueryResult r_on = ExecuteQuery(*plan, on);
  EXPECT_EQ(ResultRows(r_off), ResultRows(r_on));
}

// --- golden EXPLAIN / metrics JSON surfaces ------------------------------

TEST_F(RewriteTest, ExplainShowsRewriteLineAndBloomAnnotation) {
  auto plan = ChainPlan();
  ExecOptions options;
  options.rewrite.enabled = 1;
  options.rewrite.join_reorder = false;
  const std::string text = ExplainPlan(*plan, options);
  EXPECT_NE(text.find("rewrite: rules="), std::string::npos) << text;
  EXPECT_NE(text.find("bloom"), std::string::npos) << text;
  EXPECT_NE(text.find(", bloom(j"), std::string::npos) << text;
}

TEST_F(RewriteTest, ExplainRewriteOffHasNoRewriteArtifacts) {
  auto plan = ChainPlan();
  ExecOptions options;
  options.rewrite.enabled = 0;
  const std::string text = ExplainPlan(*plan, options);
  EXPECT_EQ(text.find("rewrite"), std::string::npos) << text;
  EXPECT_EQ(text.find("bloom("), std::string::npos) << text;
}

TEST_F(RewriteTest, MetricsJsonRewriteSectionGatedOnChange) {
  auto plan = ChainPlan();
  ExecOptions on;
  on.num_threads = 2;
  on.rewrite.enabled = 1;
  // Keep the join order fixed so the Bloom plant is the (only) firing rule
  // and the JSON section's contents are fully pinned.
  on.rewrite.join_reorder = false;
  QueryStats stats_on;
  QueryResult r_on = ExecuteQuery(*plan, on, &stats_on);
  const std::string json = stats_on.metrics.ToJson();
  EXPECT_NE(json.find("\"rewrite\":{\"rules\":\"bloom\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"blooms_planted\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bloom_dropped\":"), std::string::npos) << json;
  // Roughly half of mid's m_k values lie outside dim's key range, so the
  // planted filter must actually drop rows at the scan.
  EXPECT_GT(stats_on.metrics.rewrite_bloom_dropped(), 0u);

  const std::string analyze = ExplainAnalyzePlan(*plan, on, stats_on);
  EXPECT_NE(analyze.find("rewrite: rules=bloom"), std::string::npos)
      << analyze;
  EXPECT_NE(analyze.find("bloom_dropped="), std::string::npos) << analyze;

  ExecOptions off = on;
  off.rewrite.enabled = 0;
  QueryStats stats_off;
  QueryResult r_off = ExecuteQuery(*plan, off, &stats_off);
  EXPECT_EQ(stats_off.metrics.ToJson().find("\"rewrite\""),
            std::string::npos);
  // And the planted filter never changes the answer.
  EXPECT_EQ(ResultRows(r_off), ResultRows(r_on));
}

TEST_F(RewriteTest, DisabledPassReturnsNullAndReportsDisabled) {
  RewriteOptions o;
  o.enabled = 0;
  RewriteResult res = RewritePlan(*ChainPlan(), o);
  EXPECT_EQ(res.plan, nullptr);
  EXPECT_FALSE(res.info.enabled);
  EXPECT_FALSE(res.info.changed);
  EXPECT_EQ(res.info.RulesLine(), "");
}

// --- rewrite-equivalence differential fuzz -------------------------------

// Hundreds of fixed-seed random plans (2-6 relations, mixed join kinds,
// correlated modulus filters, skewed key columns) executed with the rewrite
// pass off and on, both compared bit-identically against the interpreter
// oracle. PJOIN_REWRITE_FUZZ_ITERS raises the plan count for the CI smoke;
// PJOIN_MEMORY_BUDGET / PJOIN_EST_SCALE ctest legs re-run the same seeds
// under spill pressure and corrupted estimates.
TEST(RewriteFuzz, DifferentialAgainstOracle) {
  const char* iters_env = std::getenv("PJOIN_REWRITE_FUZZ_ITERS");
  const int iters =
      iters_env != nullptr ? std::max(1, std::atoi(iters_env)) : 200;
  RandomPlanGenerator gen(0xBADC0FFEull);
  ThreadPool pool(4);
  for (int i = 0; i < iters; ++i) {
    // Generated tables are short-lived; drop pointer-keyed stats entries so
    // address reuse can never serve stale statistics.
    StatsCatalog::Global().Invalidate();
    GeneratedPlan g = gen.Next();
    OracleRel oracle = OracleEval(*g.plan, g);

    ExecOptions off;
    off.num_threads = 4;
    off.join_strategy = i % 3 == 0   ? JoinStrategy::kAuto
                        : i % 3 == 1 ? JoinStrategy::kBHJ
                                     : JoinStrategy::kRJ;
    off.rewrite.enabled = 0;
    ExecOptions on = off;
    on.rewrite.enabled = 1;

    QueryResult r_off = ExecuteQuery(*g.plan, off, nullptr, &pool);
    QueryResult r_on = ExecuteQuery(*g.plan, on, nullptr, &pool);

    const IntRows rows_off = ResultRows(r_off);
    const IntRows rows_on = ResultRows(r_on);
    ASSERT_EQ(rows_off, oracle.rows)
        << "rewrite-off diverged from the oracle at iteration " << i
        << "\n"
        << ExplainPlan(*g.plan, off);
    ASSERT_EQ(rows_on, oracle.rows)
        << "rewrite-on diverged from the oracle at iteration " << i << "\n"
        << ExplainPlan(*g.plan, on);
  }
  StatsCatalog::Global().Invalidate();
}

}  // namespace
}  // namespace pjoin
