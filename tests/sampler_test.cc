// Unit tests for the build-side reservoir sampler feeding the advisor's
// skew estimate: deterministic seeding, heavy-hitter accuracy on Zipf data,
// and the key-payload correlation signal.
#include "engine/sampler.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "storage/table.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace pjoin {
namespace {

// Build table with int64 key + payload columns; payload == key unless a
// generator is supplied.
Table MakeKeyedTable(const std::vector<int64_t>& keys,
                     const std::vector<int64_t>* payloads = nullptr) {
  Table t("build", Schema({{"b_key", DataType::kInt64, 0},
                           {"b_pay", DataType::kInt64, 0}}));
  t.Reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    t.column(0).AppendInt64(keys[i]);
    t.column(1).AppendInt64(payloads != nullptr ? (*payloads)[i] : keys[i]);
    t.FinishRow();
  }
  return t;
}

TEST(Sampler, HeavyHitterSharesWithinTwoFoldOnZipf) {
  // Zipf 1.0 keys over a 1000-value universe: the hottest key holds ~13% of
  // the rows. A 1024-row reservoir must place every top-5 key's estimated
  // share within 2x of its true share (the accuracy the advisor needs to
  // rank strategies; ISSUE acceptance bound).
  constexpr uint64_t kRows = 100000;
  constexpr uint64_t kUniverse = 1000;
  Rng rng(42);
  ZipfGenerator zipf(kUniverse, 1.0);
  std::vector<int64_t> keys;
  keys.reserve(kRows);
  std::map<int64_t, uint64_t> true_counts;
  for (uint64_t i = 0; i < kRows; ++i) {
    int64_t k = static_cast<int64_t>(zipf.Next(rng));
    keys.push_back(k);
    ++true_counts[k];
  }
  Table table = MakeKeyedTable(keys);

  SkewEstimate est = SampleBuildColumn(table, /*key_col=*/0, /*sample_size=*/1024);
  ASSERT_TRUE(est.present);
  EXPECT_EQ(est.table_rows, kRows);
  EXPECT_EQ(est.sample_rows, 1024u);
  ASSERT_GE(est.top.size(), 5u);

  // True top-5 by count (Zipf keys 1..5 by construction, but derive from
  // data to stay robust).
  std::vector<std::pair<uint64_t, int64_t>> ranked;
  for (const auto& [k, c] : true_counts) ranked.emplace_back(c, k);
  std::sort(ranked.rbegin(), ranked.rend());
  for (int i = 0; i < 5; ++i) {
    const int64_t key = ranked[i].second;
    const double true_share =
        static_cast<double>(ranked[i].first) / static_cast<double>(kRows);
    double est_share = 0.0;
    for (const SkewHeavyKey& h : est.top) {
      if (h.key == key) est_share = h.share;
    }
    SCOPED_TRACE("key=" + std::to_string(key) +
                 " true_share=" + std::to_string(true_share));
    EXPECT_GE(est_share, true_share / 2.0);
    EXPECT_LE(est_share, true_share * 2.0);
  }
  EXPECT_GE(est.top_share, 0.13 / 2.0);
  EXPECT_LE(est.top_share, 0.14 * 2.0);
  // payload == key: the correlation signal must be (near) perfect.
  EXPECT_GT(est.key_payload_corr, 0.99);
}

TEST(Sampler, DeterministicAcrossRuns) {
  Rng rng(7);
  std::vector<int64_t> keys;
  for (int i = 0; i < 50000; ++i) {
    keys.push_back(static_cast<int64_t>(rng.Below(500)));
  }
  Table table = MakeKeyedTable(keys);
  SkewEstimate a = SampleBuildColumn(table, 0, 1024);
  SkewEstimate b = SampleBuildColumn(table, 0, 1024);
  ASSERT_TRUE(a.present);
  ASSERT_TRUE(b.present);
  EXPECT_EQ(a.sample_rows, b.sample_rows);
  EXPECT_EQ(a.distinct_keys, b.distinct_keys);
  EXPECT_EQ(a.top_share, b.top_share);
  EXPECT_EQ(a.topk_share, b.topk_share);
  EXPECT_EQ(a.key_payload_corr, b.key_payload_corr);
  ASSERT_EQ(a.top.size(), b.top.size());
  for (size_t i = 0; i < a.top.size(); ++i) {
    EXPECT_EQ(a.top[i].key, b.top[i].key);
    EXPECT_EQ(a.top[i].share, b.top[i].share);
  }
}

TEST(Sampler, SmallTableSampledExactly) {
  // Fewer rows than the reservoir: the "estimate" is exact.
  std::vector<int64_t> keys;
  for (int i = 0; i < 100; ++i) keys.push_back(i < 40 ? 7 : i);
  Table table = MakeKeyedTable(keys);
  SkewEstimate est = SampleBuildColumn(table, 0, 1024);
  ASSERT_TRUE(est.present);
  EXPECT_EQ(est.sample_rows, 100u);
  EXPECT_DOUBLE_EQ(est.top_share, 0.4);
  ASSERT_FALSE(est.top.empty());
  EXPECT_EQ(est.top[0].key, 7);
  EXPECT_EQ(est.distinct_keys, 61u);
}

TEST(Sampler, UncorrelatedPayloadScoresLow) {
  Rng rng(11);
  std::vector<int64_t> keys, payloads;
  for (int i = 0; i < 20000; ++i) {
    keys.push_back(static_cast<int64_t>(rng.Below(1000)));
    payloads.push_back(static_cast<int64_t>(rng.Below(1000000)));
  }
  Table table = MakeKeyedTable(keys, &payloads);
  SkewEstimate est = SampleBuildColumn(table, 0, 1024);
  ASSERT_TRUE(est.present);
  EXPECT_LT(est.key_payload_corr, 0.2);
}

TEST(Sampler, DisabledAndDegenerateInputs) {
  std::vector<int64_t> keys = {1, 2, 3};
  Table table = MakeKeyedTable(keys);
  EXPECT_FALSE(SampleBuildColumn(table, 0, 0).present);   // sampling off
  EXPECT_FALSE(SampleBuildColumn(table, 9, 1024).present);  // bad column
  Table empty("e", Schema({{"k", DataType::kInt64, 0}}));
  EXPECT_FALSE(SampleBuildColumn(empty, 0, 1024).present);
}

TEST(Sampler, ReservoirSeesAllRowsOnce) {
  // Rows beyond capacity still enter the reservoir with probability
  // capacity / rows_seen; a single dominant key laid out only in the second
  // half of the table must still dominate the sample.
  ReservoirSampler sampler(256);
  for (int i = 0; i < 4000; ++i) sampler.Add(i, 0.0);
  for (int i = 0; i < 4000; ++i) sampler.Add(99, 0.0);
  SkewEstimate est = sampler.Estimate();
  EXPECT_EQ(sampler.rows_seen(), 8000u);
  EXPECT_EQ(est.sample_rows, 256u);
  ASSERT_FALSE(est.top.empty());
  EXPECT_EQ(est.top[0].key, 99);
  EXPECT_GE(est.top_share, 0.25);  // true share 0.5; 2x bound
  EXPECT_LE(est.top_share, 1.0);
}

}  // namespace
}  // namespace pjoin
