// Tests for the table-scan source: predicate pushdown, tuple ids, byte
// accounting, and morsel coverage.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "engine/executor.h"
#include "engine/plan.h"
#include "engine/scan.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace pjoin {
namespace {

Table MakeNumbers(int64_t n) {
  Table t("numbers", Schema({{"n_val", DataType::kInt64, 0},
                             {"n_mod", DataType::kInt64, 0}}));
  for (int64_t i = 0; i < n; ++i) {
    t.column(0).AppendInt64(i);
    t.column(1).AppendInt64(i % 7);
    t.FinishRow();
  }
  return t;
}

TEST(TableScan, EmitsAllRowsWithoutPredicates) {
  Table t = MakeNumbers(100000);
  RowLayout layout = RowLayout::FromSchema(t.schema(), {"n_val"});
  TableScanSource scan(&t, &layout, {});
  IntCollectSink sink(&layout);
  ThreadPool pool(4);
  ExecContext exec(&pool);
  Pipeline p;
  p.set_source(&scan);
  p.AddOperator(&sink);
  p.Run(exec);
  EXPECT_EQ(sink.count(), 100000u);
  EXPECT_EQ(scan.rows_scanned(), 100000u);
  EXPECT_EQ(scan.rows_passed(), 100000u);
  EXPECT_EQ(exec.source_tuples(), 100000u);
  // Every value exactly once.
  IntRows rows = sink.SortedRows();
  for (int64_t i = 0; i < 100000; ++i) {
    ASSERT_EQ(rows[i][0], i);
  }
}

TEST(TableScan, PredicatesNarrowSelection) {
  Table t = MakeNumbers(70000);
  RowLayout layout = RowLayout::FromSchema(t.schema(), {"n_val"});
  TableScanSource scan(&t, &layout,
                       {ScanPredicate::EqI("n_mod", 3),
                        ScanPredicate::LtI("n_val", 7000)});
  IntCollectSink sink(&layout);
  ThreadPool pool(2);
  ExecContext exec(&pool);
  Pipeline p;
  p.set_source(&scan);
  p.AddOperator(&sink);
  p.Run(exec);
  EXPECT_EQ(sink.count(), 1000u);  // i % 7 == 3 && i < 7000
  EXPECT_EQ(scan.rows_scanned(), 70000u);
  EXPECT_EQ(scan.rows_passed(), 1000u);
}

TEST(TableScan, TidColumnIsOneBasedRowId) {
  Table t = MakeNumbers(500);
  RowLayout layout({{"n_val", DataType::kInt64, 8, 0},
                    {"numbers.#tid", DataType::kInt64, 8, 0}});
  TableScanSource scan(&t, &layout, {});
  IntCollectSink sink(&layout);
  ThreadPool pool(1);
  ExecContext exec(&pool);
  Pipeline p;
  p.set_source(&scan);
  p.AddOperator(&sink);
  p.Run(exec);
  IntRows rows = sink.SortedRows();
  for (int64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(rows[i][0], i);
    EXPECT_EQ(rows[i][1], i + 1);  // +1 sentinel: 0 means null
  }
}

TEST(TableScan, CountsReadBytes) {
  // Plain-column accounting: encoding off for the scope (with it on, the
  // scan reads narrow codes and the counter shrinks accordingly —
  // encoding_test.cc covers that side).
  const char* old_enc = getenv("PJOIN_ENCODING");
  const std::string saved = old_enc != nullptr ? old_enc : "";
  setenv("PJOIN_ENCODING", "0", 1);
  Table t = MakeNumbers(10000);
  RowLayout layout = RowLayout::FromSchema(t.schema(), {"n_val"});
  // Predicate column n_mod is read even though not emitted.
  TableScanSource scan(&t, &layout, {ScanPredicate::EqI("n_mod", 0)});
  IntCollectSink sink(&layout);
  ThreadPool pool(1);
  ExecContext exec(&pool);
  Pipeline p;
  p.set_source(&scan);
  p.AddOperator(&sink);
  p.Run(exec);
  uint64_t read = exec.MergedBytes().phase(JoinPhase::kProbePipeline).read;
  EXPECT_EQ(read, 10000u * 16u);  // 8 B emitted column + 8 B predicate column
  if (old_enc != nullptr) {
    setenv("PJOIN_ENCODING", saved.c_str(), 1);
  } else {
    unsetenv("PJOIN_ENCODING");
  }
}

TEST(LateMaterialization, OuterJoinNullTidsFetchAsZero) {
  // A right-outer join under LM produces build rows whose probe-side tids
  // are the zero null padding; the late load must fetch zeros, not row 0.
  Table dim("dim", Schema({{"d_key", DataType::kInt64, 0}}));
  Table fact("fact", Schema({{"f_key", DataType::kInt64, 0},
                             {"f_pay", DataType::kInt64, 0}}));
  for (int64_t i = 0; i < 10; ++i) {
    dim.column(0).AppendInt64(i);
    dim.FinishRow();
  }
  // Only keys 0..4 appear in fact; f_pay deliberately nonzero at row 0.
  for (int64_t i = 0; i < 5; ++i) {
    fact.column(0).AppendInt64(i);
    fact.column(1).AppendInt64(1000 + i);
    fact.FinishRow();
  }
  auto make_plan = [&] {
    return Aggregate(
        Join(ScanTable(&dim), ScanTable(&fact), {{"d_key", "f_key"}},
             JoinKind::kRightOuter),
        {}, {AggDef::Sum("f_pay", "total"), AggDef::CountStar("n")});
  };
  ExecOptions em;
  ExecOptions lm;
  lm.late_materialization = true;
  QueryResult r_em = ExecuteQuery(*make_plan(), em);
  QueryResult r_lm = ExecuteQuery(*make_plan(), lm);
  // 5 matched rows + 5 unmatched dim rows with null (0) payload.
  EXPECT_EQ(std::get<int64_t>(r_em.rows[0][1]), 10);
  EXPECT_EQ(std::get<int64_t>(r_em.rows[0][0]), 1000 + 1001 + 1002 + 1003 + 1004);
  EXPECT_TRUE(r_lm.ApproxEquals(r_em));
}

TEST(LateMaterialization, FetchesDeferColumnsByTid) {
  // A selective join under LM must produce the same aggregate as under EM
  // while carrying less data through the join (partition_bytes shrinks).
  Table dim("dim2", Schema({{"e_key", DataType::kInt64, 0}}));
  Table fact("fact2", Schema({{"g_key", DataType::kInt64, 0},
                              {"g_a", DataType::kInt64, 0},
                              {"g_b", DataType::kInt64, 0},
                              {"g_c", DataType::kInt64, 0},
                              {"g_d", DataType::kInt64, 0}}));
  for (int64_t i = 0; i < 64; ++i) {
    dim.column(0).AppendInt64(i);
    dim.FinishRow();
  }
  Rng rng(8);
  for (int64_t i = 0; i < 200000; ++i) {
    fact.column(0).AppendInt64(static_cast<int64_t>(rng.Below(4096)));
    for (int c = 1; c <= 4; ++c) {
      fact.column(c).AppendInt64(i + c);
    }
    fact.FinishRow();
  }
  auto make_plan = [&] {
    return Aggregate(
        Join(ScanTable(&dim), ScanTable(&fact), {{"e_key", "g_key"}}),
        {},
        {AggDef::Sum("g_a", "sa"), AggDef::Sum("g_b", "sb"),
         AggDef::Sum("g_c", "sc"), AggDef::Sum("g_d", "sd")});
  };
  ExecOptions em;
  em.join_strategy = JoinStrategy::kRJ;
  ExecOptions lm = em;
  lm.late_materialization = true;
  QueryStats em_stats, lm_stats;
  QueryResult r_em = ExecuteQuery(*make_plan(), em, &em_stats);
  QueryResult r_lm = ExecuteQuery(*make_plan(), lm, &lm_stats);
  EXPECT_TRUE(r_lm.ApproxEquals(r_em));
  // LM materializes key+tid (later padded) instead of key+4 payloads.
  EXPECT_LT(lm_stats.partition_bytes, em_stats.partition_bytes);
}

}  // namespace
}  // namespace pjoin
