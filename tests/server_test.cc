// Multi-query server mode: admission-queue bounds and FIFO ordering,
// per-query ExecContext isolation, concurrent execution of all eight join
// kinds bit-identical to their serial runs, and cross-query memory-budget
// contention where two hybrid-hash joins share one PJOIN_MEMORY_BUDGET.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/workloads.h"
#include "engine/executor.h"
#include "engine/explain.h"
#include "engine/plan.h"
#include "server/query_server.h"
#include "spill/memory_governor.h"
#include "util/rng.h"

namespace pjoin {
namespace {

// Small two-table schema with integer-only aggregates, so every comparison
// below is exact (no float summation-order noise across morsel schedules).
struct ServerDb {
  Table build{"b", Schema({{"b_key", DataType::kInt64, 0},
                           {"b_pay", DataType::kInt64, 0}})};
  Table probe{"p", Schema({{"p_key", DataType::kInt64, 0},
                           {"p_pay", DataType::kInt64, 0}})};

  explicit ServerDb(int64_t build_rows = 2000, int64_t probe_rows = 30000) {
    Rng rng(4242);
    for (int64_t i = 0; i < build_rows; ++i) {
      build.column(0).AppendInt64(i);
      build.column(1).AppendInt64(static_cast<int64_t>(rng.Below(1000)));
      build.FinishRow();
    }
    for (int64_t i = 0; i < probe_rows; ++i) {
      // ~25% of probe keys miss the build side: exercises the non-matching
      // paths of the outer/anti/mark kinds.
      probe.column(0).AppendInt64(
          static_cast<int64_t>(rng.Below(static_cast<uint64_t>(
              build_rows + build_rows / 3))));
      probe.column(1).AppendInt64(static_cast<int64_t>(rng.Below(1000)));
      probe.FinishRow();
    }
  }
};

// One-join plan of the given kind, grouped so the result has many rows and
// a bit-exact integer checksum column.
std::unique_ptr<PlanNode> KindPlan(const ServerDb& db, JoinKind kind) {
  auto join = Join(ScanTable(&db.build), ScanTable(&db.probe),
                   {{"b_key", "p_key"}}, kind,
                   kind == JoinKind::kMark ? "hit" : "");
  std::vector<std::string> group;
  std::vector<AggDef> aggs = {AggDef::CountStar("n")};
  switch (kind) {
    case JoinKind::kBuildSemi:
    case JoinKind::kBuildAnti:
      group = {"b_pay"};
      aggs.push_back(AggDef::Sum("b_key", "ksum"));
      break;
    case JoinKind::kProbeSemi:
    case JoinKind::kProbeAnti:
      group = {"p_pay"};
      aggs.push_back(AggDef::Sum("p_key", "ksum"));
      break;
    case JoinKind::kMark:
      group = {"hit"};
      aggs.push_back(AggDef::Sum("p_key", "ksum"));
      break;
    default:  // pair kinds carry both sides
      group = {"b_pay"};
      aggs.push_back(AggDef::Sum("p_pay", "psum"));
      break;
  }
  return Aggregate(std::move(join), std::move(group), std::move(aggs));
}

const JoinKind kAllKinds[] = {
    JoinKind::kInner,     JoinKind::kLeftOuter, JoinKind::kRightOuter,
    JoinKind::kProbeSemi, JoinKind::kProbeAnti, JoinKind::kBuildSemi,
    JoinKind::kBuildAnti, JoinKind::kMark,
};

TEST(Server, AdmissionQueueIsFifoAndBounded) {
  ServerDb db;
  auto plan = KindPlan(db, JoinKind::kInner);

  ServerOptions so;
  so.max_concurrent = 1;
  so.admit_queue = 3;
  so.threads_per_query = 2;
  QueryServer server(so);
  Session session = server.OpenSession();

  // Freeze admission so the queue fills deterministically.
  server.PauseAdmission();
  ExecOptions eo;
  std::vector<QueryHandlePtr> accepted;
  for (int i = 0; i < 3; ++i) {
    accepted.push_back(session.Submit(*plan, eo));
    EXPECT_EQ(accepted.back()->state(), QueryState::kQueued);
  }
  EXPECT_EQ(server.queue_depth(), 3u);

  // The fourth submission exceeds the bound: rejected at admission time.
  QueryHandlePtr overflow = session.Submit(*plan, eo);
  EXPECT_EQ(overflow->state(), QueryState::kRejected);
  EXPECT_EQ(overflow->Wait().num_rows(), 0u);
  EXPECT_EQ(server.queries_rejected(), 1u);

  server.ResumeAdmission();
  for (auto& h : accepted) h->Wait();

  // FIFO: admission sequence numbers follow submission order.
  for (size_t i = 0; i < accepted.size(); ++i) {
    EXPECT_EQ(accepted[i]->state(), QueryState::kDone);
    EXPECT_EQ(accepted[i]->admission_seq(), i) << "query " << i;
  }
  EXPECT_EQ(server.queries_submitted(), 4u);
  EXPECT_EQ(server.queries_done(), 3u);
  EXPECT_EQ(session.queries_submitted(), 4u);
}

TEST(Server, DrainsQueuedQueriesOnShutdown) {
  ServerDb db(500, 4000);
  auto plan = KindPlan(db, JoinKind::kInner);
  ExecOptions eo;
  QueryHandlePtr handle;
  {
    ServerOptions so;
    so.max_concurrent = 1;
    so.admit_queue = 4;
    so.threads_per_query = 1;
    QueryServer server(so);
    Session session = server.OpenSession();
    server.PauseAdmission();
    handle = session.Submit(*plan, eo);
    EXPECT_EQ(handle->state(), QueryState::kQueued);
    // The destructor un-pauses, drains the queue, and joins its workers.
  }
  EXPECT_EQ(handle->state(), QueryState::kDone);
  EXPECT_GT(handle->Wait().num_rows(), 0u);
}

TEST(Server, ExecContextIsolationNoMetricBleed) {
  ServerDb small(100, 1000);
  ServerDb large(3000, 40000);
  auto plan_small = KindPlan(small, JoinKind::kInner);
  auto plan_large = KindPlan(large, JoinKind::kInner);
  ExecOptions eo;

  // Serial reference stats.
  QueryStats serial_small, serial_large;
  ThreadPool pool(2);
  eo.num_threads = 2;
  ExecuteQuery(*plan_small, eo, &serial_small, &pool);
  ExecuteQuery(*plan_large, eo, &serial_large, &pool);

  ServerOptions so;
  so.max_concurrent = 2;
  so.threads_per_query = 2;
  QueryServer server(so);
  Session session = server.OpenSession();
  // Interleave many rounds of both queries so the two slots genuinely
  // overlap; per-query counters must match the serial run every time.
  for (int round = 0; round < 4; ++round) {
    QueryHandlePtr hs = session.Submit(*plan_small, eo);
    QueryHandlePtr hl = session.Submit(*plan_large, eo);
    hs->Wait();
    hl->Wait();
    ASSERT_EQ(hs->state(), QueryState::kDone);
    ASSERT_EQ(hl->state(), QueryState::kDone);

    for (auto [handle, serial] :
         {std::pair{&hs, &serial_small}, std::pair{&hl, &serial_large}}) {
      const QueryMetrics& got = (*handle)->stats().metrics;
      const QueryMetrics& want = serial->metrics;
      ASSERT_EQ(got.joins().size(), want.joins().size());
      EXPECT_EQ(got.joins()[0].build_tuples, want.joins()[0].build_tuples);
      EXPECT_EQ(got.joins()[0].probe_tuples, want.joins()[0].probe_tuples);
      EXPECT_EQ(got.joins()[0].rows_out, want.joins()[0].rows_out);
      EXPECT_EQ(got.source_tuples(), want.source_tuples());
      EXPECT_EQ(got.result_rows(), want.result_rows());
      EXPECT_EQ(got.pipelines().size(), want.pipelines().size());
    }
  }
}

TEST(Server, AllKindsConcurrentBitIdenticalToSerial) {
  ServerDb db;
  std::vector<std::unique_ptr<PlanNode>> plans;
  std::vector<QueryResult> serial;
  ThreadPool pool(2);
  for (JoinStrategy strategy :
       {JoinStrategy::kBHJ, JoinStrategy::kRJ, JoinStrategy::kBRJ}) {
    for (JoinKind kind : kAllKinds) {
      plans.push_back(KindPlan(db, kind));
      ExecOptions eo;
      eo.join_strategy = strategy;
      eo.num_threads = 2;
      serial.push_back(ExecuteQuery(*plans.back(), eo, nullptr, &pool));
    }
  }

  ServerOptions so;
  so.max_concurrent = 4;
  so.threads_per_query = 2;
  QueryServer server(so);
  Session session = server.OpenSession();
  std::vector<QueryHandlePtr> handles;
  size_t q = 0;
  for (JoinStrategy strategy :
       {JoinStrategy::kBHJ, JoinStrategy::kRJ, JoinStrategy::kBRJ}) {
    for (JoinKind kind : kAllKinds) {
      (void)kind;
      ExecOptions eo;
      eo.join_strategy = strategy;
      handles.push_back(session.Submit(*plans[q++], eo));
    }
  }
  ASSERT_GE(server.max_concurrent(), 4);
  for (size_t i = 0; i < handles.size(); ++i) {
    const QueryResult& got = handles[i]->Wait();
    ASSERT_EQ(handles[i]->state(), QueryState::kDone) << "query " << i;
    // Integer-only aggregates: zero tolerance, truly bit-identical.
    EXPECT_TRUE(got.ApproxEquals(serial[i], 0.0)) << "query " << i;
  }
  EXPECT_EQ(server.queries_done(), handles.size());
}

TEST(Server, BudgetContentionTwoHybridJoinsBothComplete) {
  // Two identical mid-size joins; the shared budget is far below one
  // build side, so under fair-share arbitration both must go out-of-core
  // (hybrid-hash) and still finish with bit-identical results.
  MicroWorkload w = MakeSizedWorkload(1 << 13, 1 << 15);
  auto plan_a = CountJoinPlan(w);
  auto plan_b = CountJoinPlan(w);

  ExecOptions eo;
  eo.join_strategy = JoinStrategy::kBHJ;
  eo.num_threads = 2;
  ThreadPool pool(2);
  QueryResult reference = ExecuteQuery(*plan_a, eo, nullptr, &pool);

  ScopedMemoryBudget scoped(128 * 1024);
  ServerOptions so;
  so.max_concurrent = 2;
  so.threads_per_query = 2;
  QueryServer server(so);
  Session session = server.OpenSession();
  QueryHandlePtr ha = session.Submit(*plan_a, eo);
  QueryHandlePtr hb = session.Submit(*plan_b, eo);
  const QueryResult& ra = ha->Wait();
  const QueryResult& rb = hb->Wait();
  ASSERT_EQ(ha->state(), QueryState::kDone);
  ASSERT_EQ(hb->state(), QueryState::kDone);
  EXPECT_TRUE(ra.ApproxEquals(reference, 0.0));
  EXPECT_TRUE(rb.ApproxEquals(reference, 0.0));

  // Both queries were granted a fair share (half the budget) and at least
  // one join was pushed out-of-core by the governor.
  uint64_t spilled = 0;
  for (const QueryHandlePtr& h : {ha, hb}) {
    EXPECT_LE(h->granted_bytes(), 64u * 1024u);
    EXPECT_GT(h->granted_bytes(), 0u);
    for (const JoinMetrics& j : h->stats().metrics.joins()) {
      spilled += j.spill.spilled ? 1 : 0;
    }
  }
  EXPECT_GE(spilled, 1u);
  EXPECT_GT(MemoryGovernor::Global().denials(), 0u);
}

TEST(Server, MetricsJsonAndExplainCarryServerSection) {
  ServerDb db(300, 2000);
  auto plan = KindPlan(db, JoinKind::kInner);
  ExecOptions eo;
  eo.num_threads = 1;

  ServerOptions so;
  so.max_concurrent = 1;
  so.threads_per_query = 1;
  QueryServer server(so);
  Session session = server.OpenSession();
  QueryHandlePtr h = session.Submit(*plan, eo);
  h->Wait();
  ASSERT_EQ(h->state(), QueryState::kDone);

  const QueryMetrics& qm = h->stats().metrics;
  ASSERT_TRUE(qm.server_present());
  EXPECT_EQ(qm.server_query_id(), h->query_id());
  EXPECT_EQ(qm.server_session_id(), session.id());
  EXPECT_EQ(qm.server_state(), "done");

  std::string json = qm.ToJson(/*include_timings=*/false);
  EXPECT_NE(json.find("\"server\":{\"query_id\":"), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"done\""), std::string::npos);
  EXPECT_NE(json.find("\"spill_pressure\":"), std::string::npos);
  // Timings stay out of the stable form.
  EXPECT_EQ(json.find("queue_seconds"), std::string::npos);
  EXPECT_NE(qm.ToJson(true).find("queue_seconds"), std::string::npos);

  std::string analyze = ExplainAnalyzePlan(*plan, eo, h->stats());
  EXPECT_NE(analyze.find("server: query="), std::string::npos);
  EXPECT_NE(analyze.find("spill_pressure="), std::string::npos);

  // A standalone run stays byte-free of the server section.
  QueryStats standalone;
  ExecuteQuery(*plan, eo, &standalone);
  EXPECT_FALSE(standalone.metrics.server_present());
  EXPECT_EQ(standalone.metrics.ToJson(false).find("\"server\""),
            std::string::npos);
}

TEST(Server, ManySessionsInterleaved) {
  ServerDb db(800, 6000);
  auto plan = KindPlan(db, JoinKind::kInner);
  ExecOptions eo;
  QueryResult reference = ExecuteQuery(*plan, eo);

  ServerOptions so;
  so.max_concurrent = 3;
  so.threads_per_query = 1;
  so.admit_queue = 64;
  QueryServer server(so);
  std::vector<Session> sessions;
  for (int s = 0; s < 4; ++s) sessions.push_back(server.OpenSession());
  std::vector<QueryHandlePtr> handles;
  for (int round = 0; round < 3; ++round) {
    for (Session& session : sessions) {
      handles.push_back(session.Submit(*plan, eo));
    }
  }
  for (auto& h : handles) {
    EXPECT_TRUE(h->Wait().ApproxEquals(reference, 0.0));
    EXPECT_EQ(h->state(), QueryState::kDone);
  }
  // Session ids stamp through to the per-query record.
  EXPECT_EQ(handles[0]->session_id(), sessions[0].id());
  EXPECT_EQ(handles[3]->session_id(), sessions[3].id());
  EXPECT_EQ(server.queries_done(), handles.size());
  EXPECT_EQ(server.queries_rejected(), 0u);
}

}  // namespace
}  // namespace pjoin
