// Differential tests for the SIMD kernel tiers (src/kernels/): every vector
// tier must be bit-identical to the scalar oracle over random inputs,
// including empty batches and tails that are not a multiple of the lane
// width. Unavailable tiers are skipped (KernelsFor would silently hand back
// the scalar table, which would make the comparison vacuous).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "filter/blocked_bloom.h"
#include "join/key_spec.h"
#include "kernels/kernels.h"
#include "storage/row_layout.h"
#include "util/env.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/simd.h"

namespace pjoin {
namespace {

// Batch sizes covering empty, sub-lane, lane-boundary, and bitmap-word
// boundary cases for both 4-lane (AVX2) and 8-lane (AVX-512) groups.
const uint32_t kBatchSizes[] = {0,  1,  3,   4,   5,   7,   8,   9,  15,
                                16, 17, 63,  64,  65,  100, 127, 128,
                                129, 255, 256, 1000, 1024};

std::vector<SimdTier> VectorTiers() {
  return {SimdTier::kAVX2, SimdTier::kAVX512};
}

class SimdKernelTest : public ::testing::TestWithParam<SimdTier> {
 protected:
  void SetUp() override {
    if (!SimdTierAvailable(GetParam())) {
      GTEST_SKIP() << SimdTierName(GetParam())
                   << " not supported on this host";
    }
  }
  const SimdKernels& tier() const { return KernelsFor(GetParam()); }
  const SimdKernels& oracle() const { return KernelsFor(SimdTier::kScalar); }
};

TEST_P(SimdKernelTest, BloomProbeMatchesScalarAndFilter) {
  Rng rng(1);
  BlockedBloomFilter bloom;
  bloom.Resize(5000);
  std::vector<uint64_t> member;
  for (int i = 0; i < 5000; ++i) {
    member.push_back(rng.Next());
    bloom.InsertUnsynchronized(member.back());
  }
  for (uint32_t n : kBatchSizes) {
    std::vector<uint64_t> hashes(n);
    for (uint32_t i = 0; i < n; ++i) {
      // Half members (always pass), half random (mostly rejected).
      hashes[i] = (i % 2 == 0 && !member.empty())
                      ? member[rng.Next() % member.size()]
                      : rng.Next();
    }
    const uint32_t words = (n + 63) / 64;
    // Poison both outputs: the kernel must zero-initialize, including the
    // bits at and past n in the last word.
    std::vector<uint64_t> got(words + 1, ~uint64_t{0});
    std::vector<uint64_t> want(words + 1, ~uint64_t{0});
    tier().bloom_probe(bloom.blocks(), bloom.block_mask(), hashes.data(), n,
                       got.data());
    oracle().bloom_probe(bloom.blocks(), bloom.block_mask(), hashes.data(), n,
                         want.data());
    for (uint32_t w = 0; w < words; ++w) {
      EXPECT_EQ(got[w], want[w]) << "n=" << n << " word=" << w;
    }
    // The scalar oracle itself must agree with the filter's own check, and
    // bits at and past n stay zero.
    for (uint32_t i = 0; i < n; ++i) {
      EXPECT_EQ((want[i >> 6] >> (i & 63)) & 1,
                bloom.MayContain(hashes[i]) ? 1u : 0u)
          << "i=" << i;
    }
    if (n % 64 != 0) {
      EXPECT_EQ(want[words - 1] >> (n % 64), 0u) << "n=" << n;
    }
    EXPECT_EQ(got[words], ~uint64_t{0}) << "wrote past the bitmap, n=" << n;
  }
}

TEST_P(SimdKernelTest, DirTagProbeMatchesScalar) {
  Rng rng(2);
  // Synthetic directory: the kernel only does loads and bit tests, so random
  // slot words exercise it fully (pointers are masked, never dereferenced).
  const uint64_t dir_size = 1 << 12;
  const int dir_shift = 64 - 12;
  std::vector<uint64_t> dir(dir_size);
  for (auto& slot : dir) {
    // ~1/2 of slots empty, the rest with random tags + pointer bits.
    slot = (rng.Next() % 2 == 0) ? 0 : rng.Next();
  }
  for (uint32_t n : kBatchSizes) {
    std::vector<uint64_t> hashes(n);
    for (auto& h : hashes) h = rng.Next();
    std::vector<uint32_t> got_sel(n + 1, 0xdeadbeef);
    std::vector<uint64_t> got_heads(n + 1, ~uint64_t{0});
    std::vector<uint32_t> want_sel(n + 1, 0xdeadbeef);
    std::vector<uint64_t> want_heads(n + 1, ~uint64_t{0});
    uint32_t got_n =
        tier().dir_tag_probe(dir.data(), dir_shift, dir_size - 1,
                             hashes.data(), n, got_sel.data(),
                             got_heads.data());
    uint32_t want_n =
        oracle().dir_tag_probe(dir.data(), dir_shift, dir_size - 1,
                               hashes.data(), n, want_sel.data(),
                               want_heads.data());
    ASSERT_EQ(got_n, want_n) << "n=" << n;
    for (uint32_t j = 0; j < want_n; ++j) {
      EXPECT_EQ(got_sel[j], want_sel[j]) << "n=" << n << " j=" << j;
      EXPECT_EQ(got_heads[j], want_heads[j]) << "n=" << n << " j=" << j;
    }
  }
}

TEST_P(SimdKernelTest, HashRowsMatchesScalarAcrossShapes) {
  Rng rng(3);
  struct Shape {
    uint32_t stride, offset, width;
  };
  // Contiguous fast path, strided 8-byte keys, and 4-byte keys.
  const Shape shapes[] = {{8, 0, 8}, {16, 0, 8}, {16, 8, 8},
                          {24, 4, 8}, {12, 0, 4}, {20, 8, 4}};
  for (const Shape& s : shapes) {
    for (uint32_t n : kBatchSizes) {
      std::vector<std::byte> rows(static_cast<size_t>(n) * s.stride);
      for (auto& b : rows) b = static_cast<std::byte>(rng.Next());
      std::vector<uint64_t> got(n + 1, 0), want(n + 1, 0);
      tier().hash_rows(rows.data(), s.stride, s.offset, s.width, n,
                       got.data());
      oracle().hash_rows(rows.data(), s.stride, s.offset, s.width, n,
                         want.data());
      for (uint32_t i = 0; i < n; ++i) {
        EXPECT_EQ(got[i], want[i])
            << "stride=" << s.stride << " offset=" << s.offset
            << " width=" << s.width << " n=" << n << " i=" << i;
      }
    }
  }
  // The oracle itself must be HashInt64 of the loaded key.
  const uint32_t n = 257;
  std::vector<std::byte> rows(static_cast<size_t>(n) * 16);
  for (auto& b : rows) b = static_cast<std::byte>(rng.Next());
  std::vector<uint64_t> out(n);
  oracle().hash_rows(rows.data(), 16, 8, 8, n, out.data());
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t v;
    std::memcpy(&v, rows.data() + static_cast<size_t>(i) * 16 + 8, 8);
    EXPECT_EQ(out[i], HashInt64(v));
  }
  oracle().hash_rows(rows.data(), 16, 4, 4, n, out.data());
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t v;
    std::memcpy(&v, rows.data() + static_cast<size_t>(i) * 16 + 4, 4);
    EXPECT_EQ(out[i], HashInt64(v));
  }
}

TEST_P(SimdKernelTest, HistogramMatchesScalar) {
  Rng rng(4);
  const uint32_t stride = 16;  // [hash:8B][row:8B], the partitioner's layout
  struct Split {
    int shift;
    uint64_t mask;
  };
  const Split splits[] = {{0, 255}, {6, 63}, {8, 255}, {5, 0}, {0, 1}};
  for (const Split& sp : splits) {
    for (uint32_t n : kBatchSizes) {
      std::vector<std::byte> tuples(static_cast<size_t>(n) * stride);
      for (auto& b : tuples) b = static_cast<std::byte>(rng.Next());
      // Kernels accumulate (no clearing): start both from the same nonzero
      // counts to verify that contract.
      std::vector<uint64_t> got(sp.mask + 1, 7), want(sp.mask + 1, 7);
      tier().histogram(tuples.data(), n, stride, sp.shift, sp.mask,
                       got.data());
      oracle().histogram(tuples.data(), n, stride, sp.shift, sp.mask,
                         want.data());
      uint64_t total = 0;
      for (uint64_t c = 0; c <= sp.mask; ++c) {
        EXPECT_EQ(got[c], want[c])
            << "shift=" << sp.shift << " mask=" << sp.mask << " n=" << n
            << " cell=" << c;
        total += want[c] - 7;
      }
      EXPECT_EQ(total, n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTiers, SimdKernelTest,
                         ::testing::ValuesIn(VectorTiers()),
                         [](const auto& info) {
                           return std::string(SimdTierName(info.param));
                         });

TEST(SimdDispatch, KernelsForUnavailableTierFallsBackToScalar) {
  // Every returned table must be callable on this host.
  for (SimdTier t :
       {SimdTier::kScalar, SimdTier::kAVX2, SimdTier::kAVX512}) {
    const SimdKernels& k = KernelsFor(t);
    uint64_t out[1];
    const uint64_t hash = HashInt64(42);
    k.hash_rows(reinterpret_cast<const std::byte*>(&hash), 8, 0, 8, 1, out);
    EXPECT_EQ(out[0], HashInt64(hash));
    if (!SimdTierAvailable(t)) {
      EXPECT_EQ(&k, &KernelsFor(SimdTier::kScalar));
    }
  }
  EXPECT_TRUE(SimdTierAvailable(SimdTier::kScalar));
}

TEST(SimdDispatch, ActiveTierNeverExceedsDetected) {
  EXPECT_LE(static_cast<int>(ActiveSimdTier()),
            static_cast<int>(DetectSimdTier()));
}

TEST(SimdDispatch, HashRowsBatchMatchesKeySpecHash) {
  Rng rng(5);
  // Two-column layout; single int64 key (kernel path), single int32 key
  // (width-4 kernel path), and a composite key (scalar fallback).
  RowLayout wide(std::vector<RowField>{
      {"a", DataType::kInt64, 8, 0},
      {"b", DataType::kInt64, 8, 8},
  });
  RowLayout narrow(std::vector<RowField>{
      {"a", DataType::kInt32, 4, 0},
      {"b", DataType::kInt32, 4, 4},
  });
  const uint32_t n = 333;
  std::vector<std::byte> rows(static_cast<size_t>(n) * 16);
  for (auto& b : rows) b = static_cast<std::byte>(rng.Next());
  std::vector<uint64_t> out(n);

  for (const std::vector<int>& fields :
       {std::vector<int>{1}, std::vector<int>{0, 1}}) {
    KeySpec key(&wide, fields);
    HashRowsBatch(key, rows.data(), wide.stride(), n, out.data());
    for (uint32_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], key.Hash(rows.data() + static_cast<size_t>(i) * 16));
    }
  }
  KeySpec key32(&narrow, std::vector<int>{1});
  HashRowsBatch(key32, rows.data(), narrow.stride(), n, out.data());
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i],
              key32.Hash(rows.data() + static_cast<size_t>(i) * narrow.stride()));
  }
}

TEST(SimdEnv, ParseSimdTierAcceptsOnlyTierNames) {
  SimdTier t = SimdTier::kAVX512;
  EXPECT_TRUE(ParseSimdTier("scalar", &t));
  EXPECT_EQ(t, SimdTier::kScalar);
  EXPECT_TRUE(ParseSimdTier("AVX2", &t));
  EXPECT_EQ(t, SimdTier::kAVX2);
  EXPECT_TRUE(ParseSimdTier("  avx512\t", &t));
  EXPECT_EQ(t, SimdTier::kAVX512);
  for (const char* bad : {"", "avx", "sse", "512", "avx-512", "scalar2",
                          "auto", "avx2 avx512"}) {
    t = SimdTier::kAVX2;
    EXPECT_FALSE(ParseSimdTier(bad, &t)) << "'" << bad << "'";
    EXPECT_EQ(t, SimdTier::kAVX2) << "'" << bad << "' mutated the output";
  }
}

TEST(SimdEnv, RequestedSimdTierIsStrictLikeMemoryBudget) {
  unsetenv("PJOIN_SIMD");
  EXPECT_EQ(RequestedSimdTier(SimdTier::kAVX2), SimdTier::kAVX2);
  setenv("PJOIN_SIMD", "scalar", 1);
  EXPECT_EQ(RequestedSimdTier(SimdTier::kAVX2), SimdTier::kScalar);
  setenv("PJOIN_SIMD", "Avx512", 1);
  EXPECT_EQ(RequestedSimdTier(SimdTier::kScalar), SimdTier::kAVX512);
  // Unknown values fall back to the default instead of guessing.
  setenv("PJOIN_SIMD", "fastest", 1);
  EXPECT_EQ(RequestedSimdTier(SimdTier::kAVX2), SimdTier::kAVX2);
  setenv("PJOIN_SIMD", "", 1);
  EXPECT_EQ(RequestedSimdTier(SimdTier::kAVX512), SimdTier::kAVX512);
  unsetenv("PJOIN_SIMD");
}

}  // namespace
}  // namespace pjoin
