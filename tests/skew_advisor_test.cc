// Tests for the advisor's skew defense: the sampled-skew cost terms must
// keep kAuto off the plain (undefended) radix path whenever the estimated
// hottest partition overflows the margin-scaled L2 target, and the decision
// must surface in EXPLAIN / EXPLAIN ANALYZE and the metrics JSON.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/advisor.h"
#include "engine/executor.h"
#include "engine/explain.h"
#include "engine/plan.h"
#include "engine/sampler.h"
#include "storage/table.h"
#include "util/rng.h"

namespace pjoin {
namespace {

AdvisorOptions PinnedCaches() {
  AdvisorOptions opt;
  opt.l2_bytes = 1ull << 20;
  opt.llc_bytes = 16ull << 20;
  return opt;
}

SkewEstimate EstimateWithTopShare(double top_share, uint64_t sample_rows = 1024) {
  SkewEstimate est;
  est.present = true;
  est.table_rows = sample_rows * 100;
  est.sample_rows = sample_rows;
  est.distinct_keys = 100;
  est.top_share = top_share;
  est.topk_share = std::min(1.0, top_share * 1.5);
  est.key_payload_corr = 0.5;
  est.top.push_back(SkewHeavyKey{1, top_share});
  return est;
}

// The ISSUE's property: across the whole decision surface, a sampled
// max-key share above the partition-overflow threshold must never produce a
// plain radix pick — either the advisor stays non-partitioned, or the
// partitioned pick carries the armed runtime defense.
TEST(SkewAdvisor, NeverPlainRadixAboveOverflowThreshold) {
  const AdvisorOptions opt = PinnedCaches();
  for (uint64_t build : {50000ull, 200000ull, 1000000ull, 10000000ull}) {
    for (uint64_t probe_mult : {2ull, 10ull, 50ull}) {
      for (uint32_t width : {8u, 16u, 32u}) {
        for (double share : {0.02, 0.1, 0.3, 0.6, 0.95}) {
          SkewEstimate est = EstimateWithTopShare(share);
          JoinDecision d = JoinAdvisor::Decide(
              JoinKind::kInner, build, build, build * probe_mult, width, 8, 0,
              opt, &est);
          SCOPED_TRACE("build=" + std::to_string(build) +
                       " mult=" + std::to_string(probe_mult) +
                       " width=" + std::to_string(width) +
                       " share=" + std::to_string(share));
          EXPECT_TRUE(d.skew_sampled);
          EXPECT_DOUBLE_EQ(d.est_top_share, share);
          EXPECT_GE(d.est_max_partition_share, share);
          const double overflow =
              JoinAdvisor::PartitionOverflowShare(build, width, opt);
          if (d.est_max_partition_share > overflow) {
            EXPECT_TRUE(d.skew_overflow);
            const bool partitioned = d.choice != JoinStrategy::kBHJ;
            // Never plain RJ/BRJ: a partitioned pick must be defended.
            EXPECT_TRUE(!partitioned || d.skew_defense);
            if (partitioned) {
              EXPECT_STREQ(d.reason, "skewed build; partitioned with skew defense");
            }
          } else {
            EXPECT_FALSE(d.skew_overflow);
            EXPECT_FALSE(d.skew_defense);
          }
        }
      }
    }
  }
}

TEST(SkewAdvisor, UniformSampleNeverTripsOverflow) {
  // A near-uniform sample estimates the hottest partition at the even 1/P
  // spread, which the radix-bit choice keeps below the overflow threshold:
  // uniform inputs must decide exactly as they did before sampling existed.
  const AdvisorOptions opt = PinnedCaches();
  for (uint64_t build : {10000ull, 1000000ull, 10000000ull}) {
    for (uint32_t width : {8u, 16u, 32u, 64u}) {
      SkewEstimate est = EstimateWithTopShare(1.0 / 5000.0);
      JoinDecision d = JoinAdvisor::Decide(JoinKind::kInner, build, build,
                                           build * 10, width, 8, 0, opt, &est);
      JoinDecision plain = JoinAdvisor::Decide(JoinKind::kInner, build, build,
                                               build * 10, width, 8, 0, opt);
      SCOPED_TRACE("build=" + std::to_string(build) +
                   " width=" + std::to_string(width));
      EXPECT_FALSE(d.skew_overflow);
      EXPECT_FALSE(d.skew_defense);
      EXPECT_EQ(d.choice, plain.choice);
      EXPECT_DOUBLE_EQ(d.cost_rj, plain.cost_rj);
    }
  }
}

TEST(SkewAdvisor, SkewPenaltyGrowsWithShare) {
  const AdvisorOptions opt = PinnedCaches();
  const SkewEstimate mild_est = EstimateWithTopShare(0.3);
  const SkewEstimate heavy_est = EstimateWithTopShare(0.9);
  JoinDecision mild = JoinAdvisor::Decide(JoinKind::kInner, 10000000, 10000000,
                                          100000000, 8, 8, 0, opt, &mild_est);
  JoinDecision heavy = JoinAdvisor::Decide(
      JoinKind::kInner, 10000000, 10000000, 100000000, 8, 8, 0, opt,
      &heavy_est);
  EXPECT_TRUE(mild.skew_overflow);
  EXPECT_TRUE(heavy.skew_overflow);
  EXPECT_GT(heavy.cost_rj, mild.cost_rj);
  EXPECT_GT(heavy.cost_brj, mild.cost_brj);
}

// ---- End to end: a skewed build sampled by AdvisePlan ---------------------

Table MakeSkewedBuild(uint64_t rows, double heavy_fraction) {
  Table t("skb", Schema({{"b0", DataType::kInt64, 0},
                         {"b1", DataType::kInt64, 0}}));
  t.Reserve(rows);
  Rng rng(31);
  const uint64_t heavy_rows =
      static_cast<uint64_t>(heavy_fraction * static_cast<double>(rows));
  for (uint64_t i = 0; i < rows; ++i) {
    const bool heavy =
        i * heavy_rows / rows != (i + 1) * heavy_rows / rows;
    const int64_t key =
        heavy ? 1 : static_cast<int64_t>(2 + rng.Below(rows));
    t.column(0).AppendInt64(key);
    t.column(1).AppendInt64(key);
    t.FinishRow();
  }
  return t;
}

Table MakeUniformProbe(uint64_t rows, uint64_t universe) {
  Table t("skp", Schema({{"p0", DataType::kInt64, 0}}));
  t.Reserve(rows);
  Rng rng(32);
  for (uint64_t i = 0; i < rows; ++i) {
    t.column(0).AppendInt64(static_cast<int64_t>(1 + rng.Below(universe)));
    t.FinishRow();
  }
  return t;
}

std::unique_ptr<PlanNode> CountPlan(const Table* build, const Table* probe) {
  auto join = Join(ScanTable(build), ScanTable(probe), {{"b0", "p0"}});
  std::vector<std::string> group_by;
  for (const auto& col : join->OutputColumns()) group_by.push_back(col.name);
  return Aggregate(std::move(join), std::move(group_by),
                   {AggDef::CountStar("n")});
}

// Tiny modeled caches + an enormous margin force the partitioned pick, so
// the sampled overflow must arm the defense (rather than switch to BHJ).
ExecOptions ForcedPartitionAutoOptions() {
  ExecOptions options;
  options.join_strategy = JoinStrategy::kAuto;
  options.advisor.l2_bytes = 512;
  options.advisor.llc_bytes = 2048;
  options.advisor.partition_margin = 1000.0;
  options.num_threads = 2;
  return options;
}

TEST(SkewAdvisor, SkewedBuildArmsDefenseEndToEnd) {
  Table build = MakeSkewedBuild(20000, 0.5);
  Table probe = MakeUniformProbe(40000, 20000);
  auto plan = CountPlan(&build, &probe);

  ExecOptions bhj;
  bhj.join_strategy = JoinStrategy::kBHJ;
  bhj.num_threads = 2;
  QueryResult reference = ExecuteQuery(*plan, bhj);

  QueryStats stats;
  QueryResult result =
      ExecuteQuery(*plan, ForcedPartitionAutoOptions(), &stats);
  EXPECT_TRUE(result.ApproxEquals(reference));

  const JoinMetrics* jm = stats.metrics.FindJoin(0);
  ASSERT_NE(jm, nullptr);
  ASSERT_TRUE(jm->advisor.present);
  EXPECT_TRUE(jm->advisor.skew_sampled);
  EXPECT_GT(jm->advisor.est_top_share, 0.4);
  EXPECT_GT(jm->advisor.est_max_partition_share, 0.4);
  EXPECT_NE(jm->advisor.choice, JoinStrategy::kBHJ);
  EXPECT_TRUE(jm->advisor.skew_defense);
  // The runtime defense actually ran: the heavy key bypassed partitioning.
  EXPECT_TRUE(jm->skew.enabled);
  EXPECT_GE(jm->skew.heavy_hitters, 1u);
  EXPECT_GT(jm->skew.bypass_build_tuples, 5000u);
  EXPECT_GT(jm->skew.bypass_probe_tuples, 0u);
  // The JSON carries both the estimate and the runtime record.
  const std::string json = stats.metrics.ToJson(/*include_timings=*/false);
  EXPECT_NE(json.find("\"skew_defense\":true"), std::string::npos);
  EXPECT_NE(json.find("\"est_top_share\":"), std::string::npos);
  EXPECT_NE(json.find("\"skew\":{\"heavy_hitters\":"), std::string::npos);
}

TEST(SkewAdvisor, DisablingSamplerRestoresPlainDecision) {
  Table build = MakeSkewedBuild(20000, 0.5);
  Table probe = MakeUniformProbe(40000, 20000);
  auto plan = CountPlan(&build, &probe);

  ExecOptions off = ForcedPartitionAutoOptions();
  off.advisor.skew_sample_size = 0;
  QueryStats stats;
  ExecuteQuery(*plan, off, &stats);
  const JoinMetrics* jm = stats.metrics.FindJoin(0);
  ASSERT_NE(jm, nullptr);
  ASSERT_TRUE(jm->advisor.present);
  EXPECT_FALSE(jm->advisor.skew_sampled);
  EXPECT_FALSE(jm->advisor.skew_defense);
  EXPECT_FALSE(jm->skew.enabled);
  const std::string json = stats.metrics.ToJson(false);
  EXPECT_EQ(json.find("\"est_top_share\""), std::string::npos);
  EXPECT_EQ(json.find("\"skew\":{"), std::string::npos);
}

TEST(SkewAdvisor, ExplainShowsSkewDecisionFields) {
  Table build = MakeSkewedBuild(20000, 0.5);
  Table probe = MakeUniformProbe(40000, 20000);
  auto plan = CountPlan(&build, &probe);
  ExecOptions options = ForcedPartitionAutoOptions();

  // Plain EXPLAIN: the sampled estimate renders under the advisor line.
  const std::string text = ExplainPlan(*plan, options);
  EXPECT_NE(text.find("skew: sample=1024"), std::string::npos) << text;
  EXPECT_NE(text.find("top_share="), std::string::npos) << text;
  EXPECT_NE(text.find("max_part_share="), std::string::npos) << text;
  EXPECT_NE(text.find("corr="), std::string::npos) << text;
  EXPECT_NE(text.find("defense=on"), std::string::npos) << text;
  EXPECT_EQ(text.find("fell back"), std::string::npos) << text;

  // EXPLAIN ANALYZE adds the per-partition runtime record.
  QueryStats stats;
  ExecuteQuery(*plan, options, &stats);
  const std::string analyzed = ExplainAnalyzePlan(*plan, options, stats);
  EXPECT_NE(analyzed.find("skew: sample=1024"), std::string::npos) << analyzed;
  EXPECT_NE(analyzed.find("defense=on"), std::string::npos) << analyzed;
  EXPECT_NE(analyzed.find("skew_defense: heavy="), std::string::npos)
      << analyzed;
  EXPECT_NE(analyzed.find("bypass_build="), std::string::npos) << analyzed;
  EXPECT_EQ(analyzed.find("fell back"), std::string::npos) << analyzed;

  // Identical runs render identically (fixed sampling seed).
  EXPECT_EQ(text, ExplainPlan(*plan, options));
}

}  // namespace
}  // namespace pjoin
