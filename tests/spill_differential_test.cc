// Out-of-core differential testing: a slice of the differential workload
// sweep re-run under a tiny memory budget, asserting (a) row-for-row
// equality with the unconstrained run for every strategy and join kind, and
// (b) that the constrained run actually spilled — otherwise the test would
// pass vacuously.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exec/pipeline.h"
#include "exec/thread_pool.h"
#include "join/hash_join.h"
#include "join/join_types.h"
#include "join/radix_join.h"
#include "spill/memory_governor.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace pjoin {
namespace {

// Small enough that every strategy must evict partitions for these shapes
// (the staged build side alone is a few pages), large enough that the
// resident half of the hybrid is non-trivial.
constexpr uint64_t kTinyBudget = 16 * 1024;

struct DataConfig {
  const char* name;
  uint64_t build_rows;
  uint64_t probe_rows;
  uint64_t dup_factor;
  uint64_t universe_mult;
  int build_cols;
  int probe_cols;
};

// Slice of the join_differential_test sweep: base shape, heavy duplicates
// (recursion pressure), wide build rows, selective probe, large ratio.
const DataConfig kConfigs[] = {
    {"base", 1000, 4000, 2, 2, 2, 2},
    {"dup_16", 1000, 4000, 16, 2, 2, 2},
    {"pay_build_wide", 1000, 4000, 2, 2, 3, 2},
    {"sel_tenth", 1000, 4000, 2, 10, 2, 2},
    {"ratio_1_8", 500, 4000, 2, 2, 2, 2},
};

const JoinKind kKinds[] = {
    JoinKind::kInner,      JoinKind::kProbeSemi, JoinKind::kProbeAnti,
    JoinKind::kBuildSemi,  JoinKind::kBuildAnti, JoinKind::kLeftOuter,
    JoinKind::kRightOuter, JoinKind::kMark,
};

IntRows MakeRows(uint64_t rows, uint64_t universe, int cols, uint64_t seed) {
  Rng rng(seed);
  IntRows out;
  out.reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    std::vector<int64_t> row(cols);
    row[0] = static_cast<int64_t>(rng.Below(universe));
    for (int c = 1; c < cols; ++c) {
      row[c] = static_cast<int64_t>(rng.Next() & 0xFFFF);
    }
    out.push_back(std::move(row));
  }
  return out;
}

RowLayout MakeLayout(const std::string& prefix, int cols) {
  std::vector<RowField> fields;
  for (int i = 0; i < cols; ++i) {
    fields.push_back(
        RowField{prefix + std::to_string(i), DataType::kInt64, 8, 0});
  }
  return RowLayout(std::move(fields));
}

RowLayout MakeOutputLayout(JoinKind kind, int build_cols, int probe_cols) {
  std::vector<RowField> fields;
  for (int i = 0; i < build_cols; ++i) {
    fields.push_back(RowField{"b" + std::to_string(i), DataType::kInt64, 8, 0});
  }
  for (int i = 0; i < probe_cols; ++i) {
    fields.push_back(RowField{"p" + std::to_string(i), DataType::kInt64, 8, 0});
  }
  if (kind == JoinKind::kMark) {
    fields.push_back(RowField{"mark", DataType::kInt64, 8, 0});
  }
  return RowLayout(std::move(fields));
}

struct RunResult {
  IntRows rows;
  SpillMetrics spill;
};

// The join_differential_test harness, additionally reporting the join's
// spill record so callers can assert the constrained run went out-of-core.
RunResult RunJoin(JoinStrategy strategy, JoinKind kind, const IntRows& build,
                  const IntRows& probe, int build_cols, int probe_cols,
                  int threads) {
  RowLayout build_layout = MakeLayout("b", build_cols);
  RowLayout probe_layout = MakeLayout("p", probe_cols);
  RowLayout out_layout = MakeOutputLayout(kind, build_cols, probe_cols);

  JoinProjection projection;
  projection.output = &out_layout;
  projection.build = &build_layout;
  projection.probe = &probe_layout;
  for (int i = 0; i < build_cols; ++i) projection.from_build.push_back({i, i});
  for (int i = 0; i < probe_cols; ++i) {
    projection.from_probe.push_back({build_cols + i, i});
  }
  if (kind == JoinKind::kMark) {
    projection.mark_field = build_cols + probe_cols;
  }

  ThreadPool pool(threads);
  ExecContext exec(&pool);
  IntRowsSource build_src(&build_layout, &build);
  IntRowsSource probe_src(&probe_layout, &probe);
  IntCollectSink sink(&out_layout);

  RunResult result;
  if (strategy == JoinStrategy::kBHJ) {
    HashJoin join(kind, &build_layout, {0}, &probe_layout, {0}, projection);
    HashJoinBuildSink build_sink(&join);
    HashJoinProbe probe_op(&join);
    Pipeline build_pipe;
    build_pipe.set_source(&build_src);
    build_pipe.AddOperator(&build_sink);
    build_pipe.Run(exec);
    Pipeline probe_pipe;
    probe_pipe.set_source(&probe_src);
    probe_pipe.AddOperator(&probe_op);
    probe_pipe.AddOperator(&sink);
    probe_pipe.Run(exec);
    if (EmitsBuildRows(kind)) {
      HashJoinBuildScanSource scan(&join);
      Pipeline scan_pipe;
      scan_pipe.set_source(&scan);
      scan_pipe.AddOperator(&sink);
      scan_pipe.Run(exec);
    }
    result.spill = join.CollectMetrics().spill;
  } else {
    RadixJoin::Options options;
    options.strategy = strategy;
    options.expected_build_tuples = build.size() | 1;
    options.num_threads = threads;
    RadixJoin join(kind, &build_layout, {0}, &probe_layout, {0}, projection,
                   options);
    RadixBuildSink build_sink(&join);
    RadixProbeSink probe_sink(&join);
    PartitionJoinSource join_src(&join);
    Pipeline build_pipe;
    build_pipe.set_source(&build_src);
    build_pipe.AddOperator(&build_sink);
    build_pipe.Run(exec);
    Pipeline probe_pipe;
    probe_pipe.set_source(&probe_src);
    probe_pipe.AddOperator(&probe_sink);
    probe_pipe.Run(exec);
    Pipeline join_pipe;
    join_pipe.set_source(&join_src);
    join_pipe.AddOperator(&sink);
    join_pipe.Run(exec);
    result.spill = join.CollectMetrics().spill;
  }
  result.rows = sink.SortedRows();
  return result;
}

class SpillDifferentialTest : public ::testing::TestWithParam<JoinKind> {};

TEST_P(SpillDifferentialTest, BudgetedRunsMatchUnconstrained) {
  const JoinKind kind = GetParam();
  const JoinStrategy strategies[] = {JoinStrategy::kBHJ, JoinStrategy::kRJ,
                                     JoinStrategy::kBRJ};
  uint64_t seed = 7000 + static_cast<uint64_t>(kind) * 97;
  size_t idx = 0;
  for (const DataConfig& cfg : kConfigs) {
    SCOPED_TRACE(std::string("config=") + cfg.name);
    const uint64_t universe =
        std::max<uint64_t>(1, cfg.build_rows / cfg.dup_factor);
    IntRows build = MakeRows(cfg.build_rows, universe, cfg.build_cols,
                             seed + idx * 2);
    IntRows probe = MakeRows(cfg.probe_rows, universe * cfg.universe_mult,
                             cfg.probe_cols, seed + idx * 2 + 1);
    const int threads = 1 + static_cast<int>(idx % 3);
    for (JoinStrategy strategy : strategies) {
      SCOPED_TRACE(JoinStrategyName(strategy));
      RunResult unconstrained = RunJoin(strategy, kind, build, probe,
                                        cfg.build_cols, cfg.probe_cols,
                                        threads);
      ASSERT_FALSE(unconstrained.spill.spilled)
          << "unbudgeted run must stay in memory";
      RunResult budgeted;
      {
        ScopedMemoryBudget scoped(kTinyBudget);
        budgeted = RunJoin(strategy, kind, build, probe, cfg.build_cols,
                           cfg.probe_cols, threads);
      }
      ASSERT_TRUE(budgeted.spill.spilled) << "tiny budget must force a spill";
      EXPECT_GT(budgeted.spill.partitions_spilled, 0u);
      EXPECT_GT(budgeted.spill.bytes_written, 0u);
      EXPECT_GT(budgeted.spill.bytes_read, 0u);
      EXPECT_GT(budgeted.spill.build_tuples_spilled, 0u);
      ASSERT_EQ(budgeted.rows.size(), unconstrained.rows.size());
      ASSERT_EQ(budgeted.rows, unconstrained.rows);
    }
    ++idx;
  }
}

// Recursion: duplicate-heavy single-key build forces every tuple into one
// partition; the pair must re-partition (and eventually join in memory at
// the depth bound) while still producing exact results.
TEST(SpillRecursion, SingleKeyPartitionTerminates) {
  const int kBuildRows = 2000;
  IntRows build, probe;
  for (int i = 0; i < kBuildRows; ++i) build.push_back({7, i});
  for (int i = 0; i < 100; ++i) probe.push_back({i % 20, 1000 + i});
  IntRows expected = ReferenceJoin(build, probe, 0, JoinKind::kInner, 2, 2);
  for (JoinStrategy strategy : {JoinStrategy::kBHJ, JoinStrategy::kRJ}) {
    SCOPED_TRACE(JoinStrategyName(strategy));
    RunResult budgeted;
    {
      ScopedMemoryBudget scoped(kTinyBudget);
      budgeted = RunJoin(strategy, JoinKind::kInner, build, probe, 2, 2, 2);
    }
    ASSERT_TRUE(budgeted.spill.spilled);
    EXPECT_GE(budgeted.spill.max_recursion_depth, 1u);
    ASSERT_EQ(budgeted.rows, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SpillDifferentialTest, ::testing::ValuesIn(kKinds),
    [](const ::testing::TestParamInfo<JoinKind>& info) {
      std::string name = JoinKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace pjoin
