// Spill subsystem units: the memory governor's probe/account/release
// protocol (high-water mark, denial counting, unlimited mode) and the
// SpillFile / SpillPartition byte-roundtrip guarantees.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "spill/memory_governor.h"
#include "spill/spill_file.h"
#include "spill/spill_join.h"

namespace pjoin {
namespace {

TEST(MemoryGovernor, UnlimitedBudgetNeverDenies) {
  MemoryGovernor gov(0);
  EXPECT_TRUE(gov.WouldFit(1ull << 40));
  EXPECT_EQ(gov.denials(), 0u);
  EXPECT_EQ(gov.Available(), UINT64_MAX);
}

TEST(MemoryGovernor, TracksReservationsAndHighWater) {
  MemoryGovernor gov(1000);
  gov.Account(400);
  EXPECT_EQ(gov.reserved(), 400u);
  EXPECT_EQ(gov.high_water(), 400u);
  gov.Account(300);
  EXPECT_EQ(gov.reserved(), 700u);
  EXPECT_EQ(gov.high_water(), 700u);
  gov.Release(500);
  EXPECT_EQ(gov.reserved(), 200u);
  EXPECT_EQ(gov.high_water(), 700u);  // high-water is monotonic
  gov.Account(100);
  EXPECT_EQ(gov.high_water(), 700u);  // 300 < 700: unchanged
}

TEST(MemoryGovernor, WouldFitProbesWithoutReserving) {
  MemoryGovernor gov(1000);
  EXPECT_TRUE(gov.WouldFit(800));
  EXPECT_EQ(gov.reserved(), 0u);  // a probe reserves nothing
  gov.Account(800);
  EXPECT_FALSE(gov.WouldFit(300));
  EXPECT_EQ(gov.denials(), 1u);
  EXPECT_TRUE(gov.WouldFit(200));
  EXPECT_EQ(gov.denials(), 1u);
  EXPECT_EQ(gov.Available(), 200u);
}

TEST(MemoryGovernor, AvailableClampsAtZeroWhenOverBudget) {
  MemoryGovernor gov(100);
  gov.Account(250);  // forced accounting may exceed the budget
  EXPECT_EQ(gov.Available(), 0u);
  EXPECT_FALSE(gov.WouldFit(1));
}

TEST(MemoryGovernor, ScopedBudgetRestores) {
  MemoryGovernor& gov = MemoryGovernor::Global();
  const uint64_t before = gov.budget();
  {
    ScopedMemoryBudget scoped(12345);
    EXPECT_EQ(gov.budget(), 12345u);
  }
  EXPECT_EQ(gov.budget(), before);
  EXPECT_EQ(gov.denials(), 0u);  // counters reset on scope exit
}

TEST(SpillFile, RoundtripsSequentialWrites) {
  SpillFile file;
  std::vector<std::byte> data(100000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 7);
  }
  // Appends of varying sizes exercise buffer fill and large-write bypass.
  size_t off = 0;
  const size_t sizes[] = {1, 17, 4096, 70000, 25886};
  for (size_t s : sizes) {
    file.Append(data.data() + off, s);
    off += s;
  }
  ASSERT_EQ(off, data.size());
  ASSERT_EQ(file.size(), data.size());
  file.FinishWrite();
  std::vector<std::byte> back(data.size());
  file.Read(0, back.data(), back.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
  // Offset reads.
  std::byte one;
  file.Read(99999, &one, 1);
  EXPECT_EQ(one, data[99999]);
}

TEST(SpillFile, EmptyFileFinishesCleanly) {
  SpillFile file;
  file.FinishWrite();
  EXPECT_EQ(file.size(), 0u);
}

TEST(SpillPartition, AppendHashRowPadsToStride) {
  SpillStats stats;
  SpillPartition part;
  part.Init(32, &stats);  // 8B hash + 16B row + 8B pad
  const std::byte row[16] = {std::byte{1}, std::byte{2}, std::byte{3}};
  part.AppendHashRow(0xDEADBEEFull, row, 16);
  part.AppendHashRow(0x12345678ull, row, 16);
  part.FinishWrite();
  EXPECT_EQ(part.tuples(), 2u);
  EXPECT_EQ(part.bytes(), 64u);
  std::vector<std::byte> back(64);
  part.file().Read(0, back.data(), back.size());
  EXPECT_EQ(SpillTupleHash(back.data()), 0xDEADBEEFull);
  EXPECT_EQ(SpillTupleHash(back.data() + 32), 0x12345678ull);
  EXPECT_EQ(std::memcmp(SpillTupleRow(back.data()), row, 16), 0);
  EXPECT_EQ(stats.bytes_written.load(), 64u);
}

TEST(SpillPartition, AppendRawCountsTuples) {
  SpillStats stats;
  SpillPartition part;
  part.Init(16, &stats);
  std::vector<std::byte> block(16 * 10, std::byte{0x5A});
  part.AppendRaw(block.data(), block.size());
  part.FinishWrite();
  EXPECT_EQ(part.tuples(), 10u);
  EXPECT_EQ(part.bytes(), 160u);
}

}  // namespace
}  // namespace pjoin
