// Spill subsystem units: the memory governor's probe/account/release
// protocol (high-water mark, denial counting, unlimited mode) and the
// SpillFile / SpillPartition byte-roundtrip guarantees.
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "spill/memory_governor.h"
#include "spill/spill_file.h"
#include "spill/spill_join.h"
#include "util/rng.h"

namespace pjoin {
namespace {

TEST(MemoryGovernor, UnlimitedBudgetNeverDenies) {
  MemoryGovernor gov(0);
  EXPECT_TRUE(gov.WouldFit(1ull << 40));
  EXPECT_EQ(gov.denials(), 0u);
  EXPECT_EQ(gov.Available(), UINT64_MAX);
}

TEST(MemoryGovernor, TracksReservationsAndHighWater) {
  MemoryGovernor gov(1000);
  gov.Account(400);
  EXPECT_EQ(gov.reserved(), 400u);
  EXPECT_EQ(gov.high_water(), 400u);
  gov.Account(300);
  EXPECT_EQ(gov.reserved(), 700u);
  EXPECT_EQ(gov.high_water(), 700u);
  gov.Release(500);
  EXPECT_EQ(gov.reserved(), 200u);
  EXPECT_EQ(gov.high_water(), 700u);  // high-water is monotonic
  gov.Account(100);
  EXPECT_EQ(gov.high_water(), 700u);  // 300 < 700: unchanged
}

TEST(MemoryGovernor, WouldFitProbesWithoutReserving) {
  MemoryGovernor gov(1000);
  EXPECT_TRUE(gov.WouldFit(800));
  EXPECT_EQ(gov.reserved(), 0u);  // a probe reserves nothing
  gov.Account(800);
  EXPECT_FALSE(gov.WouldFit(300));
  EXPECT_EQ(gov.denials(), 1u);
  EXPECT_TRUE(gov.WouldFit(200));
  EXPECT_EQ(gov.denials(), 1u);
  EXPECT_EQ(gov.Available(), 200u);
}

TEST(MemoryGovernor, AvailableClampsAtZeroWhenOverBudget) {
  MemoryGovernor gov(100);
  gov.Account(250);  // forced accounting may exceed the budget
  EXPECT_EQ(gov.Available(), 0u);
  EXPECT_FALSE(gov.WouldFit(1));
}

TEST(MemoryGovernor, ScopedBudgetRestores) {
  MemoryGovernor& gov = MemoryGovernor::Global();
  const uint64_t before = gov.budget();
  {
    ScopedMemoryBudget scoped(12345);
    EXPECT_EQ(gov.budget(), 12345u);
  }
  EXPECT_EQ(gov.budget(), before);
  EXPECT_EQ(gov.denials(), 0u);  // counters reset on scope exit
}

// --- cross-query arbitration (server mode, see src/server/) ---------------

// Restores the calling thread's grant to "no query" on scope exit, so a
// failing assertion can never leak a dangling grant into later tests.
struct ScopedThreadGrant {
  explicit ScopedThreadGrant(MemoryGovernor::QueryGrant* grant) {
    MemoryGovernor::SetThreadGrant(grant);
  }
  ~ScopedThreadGrant() { MemoryGovernor::SetThreadGrant(nullptr); }
};

TEST(MemoryGovernor, FairShareSplitsAcrossActiveQueries) {
  MemoryGovernor gov(1200);
  MemoryGovernor::QueryGrant* g1 = gov.BeginQuery();
  EXPECT_EQ(gov.active_queries(), 1);
  EXPECT_EQ(g1->granted.load(), 1200u);  // alone: the whole budget

  MemoryGovernor::QueryGrant* g2 = gov.BeginQuery();
  EXPECT_EQ(gov.active_queries(), 2);
  EXPECT_EQ(g1->granted.load(), 600u);
  EXPECT_EQ(g2->granted.load(), 600u);

  MemoryGovernor::QueryGrant* g3 = gov.BeginQuery();
  EXPECT_EQ(g1->granted.load(), 400u);
  EXPECT_EQ(g2->granted.load(), 400u);
  EXPECT_EQ(g3->granted.load(), 400u);

  gov.EndQuery(g2);
  EXPECT_EQ(gov.active_queries(), 2);
  EXPECT_EQ(g1->granted.load(), 600u);  // shares grow back
  EXPECT_EQ(g3->granted.load(), 600u);
  // min_granted keeps the tightest share ever held.
  EXPECT_EQ(g1->min_granted.load(), 400u);
  EXPECT_EQ(g3->min_granted.load(), 400u);

  gov.EndQuery(g1);
  gov.EndQuery(g3);
  EXPECT_EQ(gov.active_queries(), 0);
}

TEST(MemoryGovernor, UnlimitedBudgetGrantsUnlimited) {
  MemoryGovernor gov(0);
  MemoryGovernor::QueryGrant* g = gov.BeginQuery();
  EXPECT_EQ(g->granted.load(), UINT64_MAX);
  ScopedThreadGrant scoped(g);
  EXPECT_TRUE(gov.WouldFit(1ull << 40));
  EXPECT_EQ(gov.spill_pressure(), 0u);
  gov.EndQuery(g);
}

TEST(MemoryGovernor, BudgetSwapRecomputesShares) {
  MemoryGovernor gov(1000);
  MemoryGovernor::QueryGrant* g1 = gov.BeginQuery();
  MemoryGovernor::QueryGrant* g2 = gov.BeginQuery();
  EXPECT_EQ(g1->granted.load(), 500u);
  gov.set_budget(2000);
  EXPECT_EQ(g1->granted.load(), 1000u);
  EXPECT_EQ(g2->granted.load(), 1000u);
  gov.set_budget(0);
  EXPECT_EQ(g1->granted.load(), UINT64_MAX);
  gov.EndQuery(g1);
  gov.EndQuery(g2);
}

TEST(MemoryGovernor, GrantOverrunSignalsSpillPressure) {
  MemoryGovernor gov(1000);
  MemoryGovernor::QueryGrant* mine = gov.BeginQuery();
  MemoryGovernor::QueryGrant* other = gov.BeginQuery();  // contends: 500 each
  {
    ScopedThreadGrant scoped(mine);
    gov.Account(400);
    EXPECT_EQ(mine->used.load(), 400u);
    EXPECT_EQ(gov.reserved(), 400u);

    // Over the fair share but under the global budget: denied as pressure —
    // the arbiter pushing this query toward its spill path early.
    EXPECT_FALSE(gov.WouldFit(200));
    EXPECT_EQ(mine->pressure_events.load(), 1u);
    EXPECT_EQ(gov.spill_pressure(), 1u);
    EXPECT_EQ(gov.denials(), 1u);

    EXPECT_TRUE(gov.WouldFit(100));  // inside the share: fine
    gov.Release(400);
    EXPECT_EQ(mine->used.load(), 0u);
  }
  // Without a thread grant the same probe sees only the global budget.
  EXPECT_TRUE(gov.WouldFit(600));
  gov.EndQuery(mine);
  gov.EndQuery(other);
  EXPECT_EQ(gov.reserved(), 0u);
}

TEST(MemoryGovernor, EndQueryReturnsLeakedBytes) {
  MemoryGovernor gov(1000);
  MemoryGovernor::QueryGrant* g = gov.BeginQuery();
  {
    ScopedThreadGrant scoped(g);
    gov.Account(300);
  }
  EXPECT_EQ(gov.reserved(), 300u);
  gov.EndQuery(g);  // query "forgot" to release: pool must recover
  EXPECT_EQ(gov.reserved(), 0u);
}

TEST(MemoryGovernor, ReleaseClampsInsteadOfWrapping) {
  MemoryGovernor gov(1000);
  gov.Account(50);
  gov.Release(100);  // over-release from a second owner must not wrap
  EXPECT_EQ(gov.reserved(), 0u);
  EXPECT_TRUE(gov.WouldFit(900));
}

// Deterministic two-thread interleaving: a barrier drives the exact
// account/probe/release schedule of two contending queries.
class TestBarrier {
 public:
  explicit TestBarrier(int parties) : parties_(parties) {}
  void Arrive() {
    std::unique_lock<std::mutex> lock(mu_);
    int gen = generation_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != gen; });
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int parties_;
  int waiting_ = 0;
  int generation_ = 0;
};

TEST(MemoryGovernor, DeterministicTwoQueryInterleaving) {
  MemoryGovernor gov(1000);
  TestBarrier barrier(2);
  bool a_fit_over = true, a_fit_within = false, b_fit = false;

  std::thread a([&] {
    MemoryGovernor::QueryGrant* g = gov.BeginQuery();
    barrier.Arrive();  // both queries registered: 500 each
    ScopedThreadGrant scoped(g);
    gov.Account(400);
    barrier.Arrive();  // step 1: A holds 400
    a_fit_over = gov.WouldFit(200);     // 600 > 500: pressure denial
    a_fit_within = gov.WouldFit(50);    // 450 <= 500: fits
    barrier.Arrive();  // step 2: both probed
    gov.Release(400);
    barrier.Arrive();  // step 3: drained
    gov.EndQuery(g);
  });
  std::thread b([&] {
    MemoryGovernor::QueryGrant* g = gov.BeginQuery();
    barrier.Arrive();  // both queries registered
    ScopedThreadGrant scoped(g);
    gov.Account(300);
    barrier.Arrive();  // step 1: B holds 300, global 700
    b_fit = gov.WouldFit(100);          // 400 <= 500 and 800 <= 1000: fits
    barrier.Arrive();  // step 2
    gov.Release(300);
    barrier.Arrive();  // step 3
    gov.EndQuery(g);
  });
  a.join();
  b.join();

  EXPECT_FALSE(a_fit_over);
  EXPECT_TRUE(a_fit_within);
  EXPECT_TRUE(b_fit);
  EXPECT_EQ(gov.reserved(), 0u);
  EXPECT_EQ(gov.spill_pressure(), 1u);
  EXPECT_EQ(gov.active_queries(), 0);
}

// Regression for the single-owner assumption: reserve/release hammered from
// 8 threads (with query churn) must balance to zero and never wrap. Run
// under TSan (PJOIN_SANITIZE=tsan) this is the governor's race detector.
TEST(MemoryGovernor, ConcurrentReserveReleaseHammer) {
  MemoryGovernor gov(1 << 20);
  const int kThreads = 8;
  const int kIters = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gov, t] {
      Rng rng(1000 + t);
      MemoryGovernor::QueryGrant* g = gov.BeginQuery();
      ScopedThreadGrant scoped(g);
      uint64_t held = 0;
      for (int i = 0; i < kIters; ++i) {
        uint64_t bytes = 64 + rng.Below(4096);
        if (gov.WouldFit(bytes)) {
          gov.Account(bytes);
          held += bytes;
        }
        if ((i & 7) == 7 && held > 0) {
          gov.Release(held);
          held = 0;
        }
        // Query churn: re-register mid-stream so shares recompute while
        // other threads are accounting.
        if ((i & 1023) == 1023) {
          gov.Release(held);
          held = 0;
          MemoryGovernor::SetThreadGrant(nullptr);
          gov.EndQuery(g);
          g = gov.BeginQuery();
          MemoryGovernor::SetThreadGrant(g);
        }
      }
      gov.Release(held);
      MemoryGovernor::SetThreadGrant(nullptr);
      gov.EndQuery(g);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(gov.reserved(), 0u);
  EXPECT_EQ(gov.active_queries(), 0);
  EXPECT_LE(gov.high_water(), gov.budget() + kThreads * 4160u);
}

TEST(SpillFile, RoundtripsSequentialWrites) {
  SpillFile file;
  std::vector<std::byte> data(100000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 7);
  }
  // Appends of varying sizes exercise buffer fill and large-write bypass.
  size_t off = 0;
  const size_t sizes[] = {1, 17, 4096, 70000, 25886};
  for (size_t s : sizes) {
    file.Append(data.data() + off, s);
    off += s;
  }
  ASSERT_EQ(off, data.size());
  ASSERT_EQ(file.size(), data.size());
  file.FinishWrite();
  std::vector<std::byte> back(data.size());
  file.Read(0, back.data(), back.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
  // Offset reads.
  std::byte one;
  file.Read(99999, &one, 1);
  EXPECT_EQ(one, data[99999]);
}

TEST(SpillFile, EmptyFileFinishesCleanly) {
  SpillFile file;
  file.FinishWrite();
  EXPECT_EQ(file.size(), 0u);
}

TEST(SpillPartition, AppendHashRowPadsToStride) {
  SpillStats stats;
  SpillPartition part;
  part.Init(32, &stats);  // 8B hash + 16B row + 8B pad
  const std::byte row[16] = {std::byte{1}, std::byte{2}, std::byte{3}};
  part.AppendHashRow(0xDEADBEEFull, row, 16);
  part.AppendHashRow(0x12345678ull, row, 16);
  part.FinishWrite();
  EXPECT_EQ(part.tuples(), 2u);
  EXPECT_EQ(part.bytes(), 64u);
  std::vector<std::byte> back(64);
  part.file().Read(0, back.data(), back.size());
  EXPECT_EQ(SpillTupleHash(back.data()), 0xDEADBEEFull);
  EXPECT_EQ(SpillTupleHash(back.data() + 32), 0x12345678ull);
  EXPECT_EQ(std::memcmp(SpillTupleRow(back.data()), row, 16), 0);
  EXPECT_EQ(stats.bytes_written.load(), 64u);
}

TEST(SpillPartition, AppendRawCountsTuples) {
  SpillStats stats;
  SpillPartition part;
  part.Init(16, &stats);
  std::vector<std::byte> block(16 * 10, std::byte{0x5A});
  part.AppendRaw(block.data(), block.size());
  part.FinishWrite();
  EXPECT_EQ(part.tuples(), 10u);
  EXPECT_EQ(part.bytes(), 160u);
}

}  // namespace
}  // namespace pjoin
