// Tests for the table-statistics subsystem (src/stats/).
//
// Claim structure:
//   * Histogram accuracy: equal-height histograms keep the q-error of range
//     and equality estimates within 2x on uniform, Zipf-distributed, and
//     TPC-H columns (the bound the re-planner's trigger assumes).
//   * Sketch accuracy: the distinct sketch is exact below its exact-set cap
//     and within 5% above it.
//   * Determinism: collecting statistics twice yields identical statistics,
//     so EXPLAIN goldens cannot flap.
//   * Estimator wiring: scan and join cardinality estimates use the catalog,
//     multi-predicate conjunctions damp correlated columns, and PJOIN_STATS=0
//     restores the pre-statistics heuristics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "engine/plan.h"
#include "engine/predicate.h"
#include "stats/distinct_sketch.h"
#include "stats/histogram.h"
#include "stats/stats_catalog.h"
#include "storage/table.h"
#include "tpch/gen.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace pjoin {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

Table IntTable(const std::string& name, const std::string& col,
               const std::vector<int64_t>& values) {
  Table t(name, Schema({{col, DataType::kInt64, 0}}));
  t.Reserve(values.size());
  for (int64_t v : values) {
    t.column(0).AppendInt64(v);
    t.FinishRow();
  }
  return t;
}

// Symmetric q-error of an estimated fraction against the true fraction.
double QError(double est, double actual) {
  est = std::max(est, 1e-9);
  actual = std::max(actual, 1e-9);
  return std::max(est / actual, actual / est);
}

// ---- Histogram accuracy --------------------------------------------------

TEST(StatsHistogram, UniformRangeAndEqualityWithinQError2) {
  Rng rng(41);
  const uint64_t n = 100000;
  const int64_t universe = 50000;
  std::vector<int64_t> values;
  values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    values.push_back(static_cast<int64_t>(rng.Below(universe)));
  }
  Table t = IntTable("sh_uniform", "v", values);
  EqualHeightHistogram h = EqualHeightHistogram::Build(t.column(0), 64);
  ASSERT_TRUE(h.valid());

  for (int64_t cut : {100l, 5000l, 25000l, 49000l}) {
    const double actual =
        static_cast<double>(std::count_if(
            values.begin(), values.end(),
            [cut](int64_t v) { return v <= cut; })) /
        static_cast<double>(n);
    EXPECT_LE(QError(h.LeFraction(static_cast<double>(cut)), actual), 2.0)
        << "cut=" << cut;
  }
  for (int64_t lo : {1000l, 30000l}) {
    const int64_t hi = lo + 4000;
    const double actual =
        static_cast<double>(std::count_if(
            values.begin(), values.end(),
            [lo, hi](int64_t v) { return v >= lo && v <= hi; })) /
        static_cast<double>(n);
    EXPECT_LE(QError(h.BetweenFraction(static_cast<double>(lo),
                                       static_cast<double>(hi)),
                     actual),
              2.0)
        << "lo=" << lo;
  }
}

TEST(StatsHistogram, ZipfHotKeysGetSingletonBuckets) {
  Rng rng(43);
  ZipfGenerator zipf(10000, 1.1);
  const uint64_t n = 200000;
  std::vector<int64_t> values;
  values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    values.push_back(static_cast<int64_t>(zipf.Next(rng)));
  }
  Table t = IntTable("sh_zipf", "v", values);
  EqualHeightHistogram h = EqualHeightHistogram::Build(t.column(0), 64);
  ASSERT_TRUE(h.valid());

  // The hottest keys dominate whole buckets (value-boundary snapping), so
  // their equality estimates stay within the q-error bound instead of being
  // averaged into the cold tail.
  for (int64_t hot : {1l, 2l, 3l, 5l, 10l}) {
    const double actual =
        static_cast<double>(std::count(values.begin(), values.end(), hot)) /
        static_cast<double>(n);
    EXPECT_LE(QError(h.EqFraction(static_cast<double>(hot)), actual), 2.0)
        << "key=" << hot;
  }
  // Range over the hot head: dominated by exactly-kept heavy buckets.
  const double actual_head =
      static_cast<double>(std::count_if(values.begin(), values.end(),
                                        [](int64_t v) { return v <= 10; })) /
      static_cast<double>(n);
  EXPECT_LE(QError(h.LeFraction(10.0), actual_head), 2.0);
}

TEST(StatsHistogram, TpchColumnsWithinQError2) {
  auto db = GenerateTpch(0.02);
  struct Probe {
    const Table* table;
    const char* column;
    double le_cut;
  };
  const Probe probes[] = {
      {&db->lineitem, "l_quantity", 25.0},
      {&db->lineitem, "l_partkey", 2000.0},
      {&db->orders, "o_custkey", 1500.0},
      {&db->part, "p_size", 25.0},
  };
  for (const Probe& p : probes) {
    SCOPED_TRACE(p.column);
    const int col = p.table->schema().IndexOf(p.column);
    EqualHeightHistogram h =
        EqualHeightHistogram::Build(p.table->column(col), 64);
    ASSERT_TRUE(h.valid());
    uint64_t hits = 0;
    const Column& c = p.table->column(col);
    for (uint64_t r = 0; r < p.table->num_rows(); ++r) {
      const double v = c.type() == DataType::kFloat64
                           ? c.GetFloat64(r)
                           : static_cast<double>(c.GetInt64(r));
      if (v <= p.le_cut) ++hits;
    }
    const double actual = static_cast<double>(hits) /
                          static_cast<double>(p.table->num_rows());
    EXPECT_LE(QError(h.LeFraction(p.le_cut), actual), 2.0);
  }
}

// ---- Distinct sketch -----------------------------------------------------

TEST(StatsSketch, ExactBelowCap) {
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 5000; ++i) values.push_back(i % 1234);
  Table t = IntTable("ss_exact", "v", values);
  DistinctSketch s = DistinctSketch::Build(t.column(0));
  EXPECT_TRUE(s.exact());
  EXPECT_EQ(s.Estimate(), 1234u);
}

TEST(StatsSketch, WithinFivePercentAboveCap) {
  Rng rng(47);
  const uint64_t n = 400000;
  const uint64_t universe = 150000;
  std::vector<int64_t> values;
  std::vector<bool> seen(universe, false);
  values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t v = rng.Below(universe);
    seen[v] = true;
    values.push_back(static_cast<int64_t>(v));
  }
  const uint64_t truth =
      static_cast<uint64_t>(std::count(seen.begin(), seen.end(), true));
  Table t = IntTable("ss_hll", "v", values);
  DistinctSketch s = DistinctSketch::Build(t.column(0));
  EXPECT_FALSE(s.exact());
  const double est = static_cast<double>(s.Estimate());
  EXPECT_LE(QError(est, static_cast<double>(truth)), 1.05)
      << "est=" << est << " truth=" << truth;
}

// ---- Catalog determinism and gating --------------------------------------

TEST(StatsCatalogTest, CollectionIsDeterministic) {
  Rng rng(53);
  std::vector<int64_t> values;
  for (int i = 0; i < 30000; ++i) {
    values.push_back(static_cast<int64_t>(rng.Below(7000)));
  }
  Table t = IntTable("sc_det", "v", values);
  TableStats a = StatsCatalog::Collect(t, 64);
  TableStats b = StatsCatalog::Collect(t, 64);
  ASSERT_EQ(a.columns.size(), b.columns.size());
  EXPECT_EQ(a.rows, b.rows);
  for (size_t c = 0; c < a.columns.size(); ++c) {
    EXPECT_EQ(a.columns[c].distinct, b.columns[c].distinct);
    EXPECT_EQ(a.columns[c].min, b.columns[c].min);
    EXPECT_EQ(a.columns[c].max, b.columns[c].max);
    EXPECT_EQ(a.columns[c].histogram.DebugString(),
              b.columns[c].histogram.DebugString());
  }
}

TEST(StatsCatalogTest, DisabledByEnvReturnsNull) {
  Table t = IntTable("sc_off", "v", {1, 2, 3, 4, 5});
  {
    ScopedEnv off("PJOIN_STATS", "0");
    EXPECT_EQ(StatsCatalog::Global().Get(t), nullptr);
    EXPECT_EQ(ColumnDistinctCount(t, 0), 0u);
  }
  const TableStats* ts = StatsCatalog::Global().Get(t);
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->rows, 5u);
  EXPECT_EQ(ts->columns[0].distinct, 5u);
  StatsCatalog::Global().Invalidate();
}

TEST(StatsCatalogTest, BucketKnobRespected) {
  Rng rng(59);
  std::vector<int64_t> values;
  for (int i = 0; i < 50000; ++i) {
    values.push_back(static_cast<int64_t>(rng.Below(20000)));
  }
  Table t = IntTable("sc_buckets", "v", values);
  TableStats wide = StatsCatalog::Collect(t, 8);
  TableStats fine = StatsCatalog::Collect(t, 256);
  EXPECT_LE(wide.columns[0].histogram.buckets().size(), 8u);
  EXPECT_GT(fine.columns[0].histogram.buckets().size(),
            wide.columns[0].histogram.buckets().size());
}

TEST(StatsCatalogTest, AppendRefreshesCachedStats) {
  Table t = IntTable("sc_append", "v", {1, 2, 3, 4, 5});
  StatsCatalog& cat = StatsCatalog::Global();
  const TableStats* ts = cat.Get(t);
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->rows, 5u);
  EXPECT_EQ(ts->columns[0].distinct, 5u);

  // In-place append: the cached entry's content fingerprint no longer
  // matches, so the next Get() rebuilds instead of serving stale rows.
  for (int64_t v : {6, 7, 8}) {
    t.column(0).AppendInt64(v);
    t.FinishRow();
  }
  const TableStats* fresh = cat.Get(t);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->rows, 8u);
  EXPECT_EQ(fresh->columns[0].distinct, 8u);
  EXPECT_EQ(fresh->columns[0].max, 8.0);

  // Explicit invalidation releases the entry immediately; the next Get()
  // recollects from scratch and lands on the same statistics.
  cat.InvalidateTable(t);
  const TableStats* again = cat.Get(t);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->rows, 8u);
  EXPECT_EQ(again->columns[0].distinct, 8u);
  cat.Invalidate();
}

// ---- Estimator wiring ----------------------------------------------------

TEST(StatsEstimate, ScanEstimateUsesHistogram) {
  // 9 of every 10 rows are small; a min/max heuristic on [0, 1000000] would
  // estimate `v <= 100` at ~0.01%, the histogram sees ~90%.
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 20000; ++i) {
    values.push_back(i % 10 == 0 ? 1000000 : i % 100);
  }
  Table t = IntTable("se_hist", "v", values);
  const double sel =
      EstimateSelectivity(ScanPredicate::LeI("v", 100), t);
  EXPECT_GT(sel, 0.5);
  EXPECT_LE(QError(sel, 0.9), 2.0);
  StatsCatalog::Global().Invalidate();
}

TEST(StatsEstimate, JoinOutputUsesDistinctCounts) {
  // Build keys 0..99, probe keys 0..199: half the probe rows can match,
  // which only the distinct-count formula sees.
  std::vector<int64_t> build_keys, probe_keys;
  for (int64_t i = 0; i < 100; ++i) build_keys.push_back(i);
  for (int64_t i = 0; i < 2000; ++i) probe_keys.push_back(i % 200);
  Table build = IntTable("se_join_b", "b0", build_keys);
  Table probe = IntTable("se_join_p", "p0", probe_keys);
  auto plan = Join(ScanTable(&build), ScanTable(&probe), {{"b0", "p0"}});
  // d_build = 100, d_probe = 200: |out| = 100 * 2000 / 200 = 1000.
  EXPECT_EQ(plan->EstimateRows(), 1000u);
  {
    // Stats off: the estimator falls back to its probe-side heuristic.
    ScopedEnv off("PJOIN_STATS", "0");
    EXPECT_EQ(plan->EstimateRows(), 2000u);  // heuristic: probe rows
  }
  StatsCatalog::Global().Invalidate();
}

TEST(StatsEstimate, CorrelatedConjunctionIsDamped) {
  // Two perfectly correlated columns (b == a): the independence product
  // underestimates quadratically; the damped combiner must stay within the
  // most-selective single predicate and above the raw product.
  std::vector<ColumnDef> defs = {{"a", DataType::kInt64, 0},
                                 {"b", DataType::kInt64, 0}};
  Table t("se_corr", Schema(std::move(defs)));
  const int64_t n = 20000;
  t.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t v = i % 1000;
    t.column(0).AppendInt64(v);
    t.column(1).AppendInt64(v);
    t.FinishRow();
  }
  const std::vector<ScanPredicate> preds = {ScanPredicate::EqI("a", 7),
                                            ScanPredicate::EqI("b", 7)};
  // distinct(a) * distinct(b) = 1e6 >> 20000 rows: flagged correlated.
  const double combined = EstimateConjunctionSelectivity(preds, t);
  const double single = EstimateSelectivity(preds[0], t);
  EXPECT_LE(combined, single + 1e-12);
  EXPECT_GT(combined, single * single * 1.5);  // clearly above the product
  {
    // Stats off: plain independence product (the pre-statistics behavior).
    ScopedEnv off("PJOIN_STATS", "0");
    const double off_combined = EstimateConjunctionSelectivity(preds, t);
    const double off_single = EstimateSelectivity(preds[0], t);
    EXPECT_NEAR(off_combined, off_single * off_single, 1e-12);
  }
  StatsCatalog::Global().Invalidate();
}

TEST(StatsEstimate, SameColumnPredicatesTakeMin) {
  Rng rng(61);
  std::vector<int64_t> values;
  for (int i = 0; i < 20000; ++i) {
    values.push_back(static_cast<int64_t>(rng.Below(10000)));
  }
  Table t = IntTable("se_samecol", "v", values);
  const std::vector<ScanPredicate> preds = {ScanPredicate::GeI("v", 5000),
                                            ScanPredicate::LeI("v", 5100)};
  const double combined = EstimateConjunctionSelectivity(preds, t);
  const double narrow = EstimateSelectivity(preds[1], t);
  // Same-column conjuncts must not multiply (that would square-count the
  // shared column); the combiner takes the most selective one.
  EXPECT_LE(combined, narrow + 1e-12);
  EXPECT_GT(combined, 0.0);
  StatsCatalog::Global().Invalidate();
}

}  // namespace
}  // namespace pjoin
