// Unit tests for src/storage: types, schema, columns, tables, row layouts,
// row buffers.
#include <gtest/gtest.h>

#include <cstring>

#include "storage/column.h"
#include "storage/row_buffer.h"
#include "storage/row_layout.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/types.h"

namespace pjoin {
namespace {

TEST(Types, Widths) {
  EXPECT_EQ(TypeWidth(DataType::kInt64), 8u);
  EXPECT_EQ(TypeWidth(DataType::kInt32), 4u);
  EXPECT_EQ(TypeWidth(DataType::kFloat64), 8u);
  EXPECT_EQ(TypeWidth(DataType::kDate), 4u);
  EXPECT_EQ(TypeWidth(DataType::kChar, 25), 25u);
}

TEST(Types, DateRoundTrip) {
  int32_t d = MakeDate(1998, 12, 1);
  EXPECT_EQ(FormatDate(d), "1998-12-01");
  EXPECT_EQ(FormatDate(MakeDate(1970, 1, 1)), "1970-01-01");
  EXPECT_EQ(MakeDate(1970, 1, 1), 0);
  EXPECT_EQ(MakeDate(1970, 1, 2), 1);
}

TEST(Types, DateOrdering) {
  EXPECT_LT(MakeDate(1994, 1, 1), MakeDate(1995, 1, 1));
  EXPECT_LT(MakeDate(1995, 2, 28), MakeDate(1995, 3, 1));
}

TEST(Schema, IndexLookup) {
  Schema schema({{"a", DataType::kInt64, 0},
                 {"b", DataType::kChar, 10},
                 {"c", DataType::kFloat64, 0}});
  EXPECT_EQ(schema.num_columns(), 3);
  EXPECT_EQ(schema.IndexOf("b"), 1);
  EXPECT_EQ(schema.Find("missing"), -1);
  EXPECT_EQ(schema.column(1).width(), 10u);
}

TEST(Column, Int64RoundTrip) {
  Column col(DataType::kInt64);
  for (int64_t v : {-1, 0, 42, 1 << 30}) col.AppendInt64(v);
  EXPECT_EQ(col.size(), 4u);
  EXPECT_EQ(col.GetInt64(0), -1);
  EXPECT_EQ(col.GetInt64(3), 1 << 30);
}

TEST(Column, StringPadding) {
  Column col(DataType::kChar, 8);
  col.AppendString("hi");
  col.AppendString("exactly8");
  col.AppendString("way too long");
  EXPECT_EQ(col.GetString(0), "hi      ");
  EXPECT_EQ(col.GetString(1), "exactly8");
  EXPECT_EQ(col.GetString(2), "way too ");
}

TEST(Table, AppendAndCount) {
  Table t("t", Schema({{"k", DataType::kInt64, 0}, {"v", DataType::kFloat64, 0}}));
  for (int i = 0; i < 10; ++i) {
    t.column(0).AppendInt64(i);
    t.column(1).AppendFloat64(i * 0.5);
    t.FinishRow();
  }
  EXPECT_EQ(t.num_rows(), 10u);
  EXPECT_EQ(t.column("v").GetFloat64(4), 2.0);
  EXPECT_EQ(t.TotalBytes(), 10u * 16u);
}

TEST(RowLayout, OffsetsAndStride) {
  RowLayout layout({{"k", DataType::kInt64, 8, 0},
                    {"d", DataType::kDate, 4, 0},
                    {"s", DataType::kChar, 10, 0}});
  EXPECT_EQ(layout.stride(), 22u);
  EXPECT_EQ(layout.field(0).offset, 0u);
  EXPECT_EQ(layout.field(1).offset, 8u);
  EXPECT_EQ(layout.field(2).offset, 12u);
  EXPECT_EQ(layout.IndexOf("s"), 2);
}

TEST(RowLayout, TypedAccess) {
  RowLayout layout({{"k", DataType::kInt64, 8, 0},
                    {"f", DataType::kFloat64, 8, 0},
                    {"d", DataType::kDate, 4, 0}});
  std::vector<std::byte> row(layout.stride());
  layout.SetInt64(row.data(), 0, -77);
  layout.SetFloat64(row.data(), 1, 2.75);
  layout.SetInt32(row.data(), 2, MakeDate(1995, 6, 1));
  EXPECT_EQ(layout.GetInt64(row.data(), 0), -77);
  EXPECT_EQ(layout.GetFloat64(row.data(), 1), 2.75);
  EXPECT_EQ(layout.GetInt32(row.data(), 2), MakeDate(1995, 6, 1));
  EXPECT_EQ(layout.GetNumeric(row.data(), 2), MakeDate(1995, 6, 1));
}

TEST(RowLayout, FromSchemaSubset) {
  Schema schema({{"a", DataType::kInt64, 0},
                 {"b", DataType::kChar, 5},
                 {"c", DataType::kFloat64, 0}});
  RowLayout layout = RowLayout::FromSchema(schema, {"c", "a"});
  EXPECT_EQ(layout.num_fields(), 2);
  EXPECT_EQ(layout.field(0).name, "c");
  EXPECT_EQ(layout.stride(), 16u);
}

TEST(RowLayout, CopyField) {
  RowLayout src({{"x", DataType::kInt64, 8, 0}});
  RowLayout dst({{"pad", DataType::kInt32, 4, 0}, {"y", DataType::kInt64, 8, 0}});
  std::vector<std::byte> srow(src.stride()), drow(dst.stride());
  src.SetInt64(srow.data(), 0, 123456789);
  dst.CopyField(drow.data(), 1, src, srow.data(), 0);
  EXPECT_EQ(dst.GetInt64(drow.data(), 1), 123456789);
}

TEST(RowBuffer, AppendAndIterate) {
  RowBuffer buf(8, /*page_rows=*/4);
  for (int64_t i = 0; i < 11; ++i) {
    buf.Append(reinterpret_cast<const std::byte*>(&i));
  }
  EXPECT_EQ(buf.size(), 11u);
  int64_t sum = 0;
  uint64_t pages = 0;
  buf.ForEachPage([&](const std::byte* rows, uint32_t count) {
    ++pages;
    for (uint32_t i = 0; i < count; ++i) {
      int64_t v;
      std::memcpy(&v, rows + i * 8, 8);
      sum += v;
    }
  });
  EXPECT_EQ(pages, 3u);
  EXPECT_EQ(sum, 55);
}

TEST(RowBuffer, RowAtStablePointers) {
  RowBuffer buf(8, 4);
  std::vector<std::byte*> ptrs;
  for (int64_t i = 0; i < 20; ++i) {
    ptrs.push_back(buf.Append(reinterpret_cast<const std::byte*>(&i)));
  }
  for (int64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(buf.RowAt(i), ptrs[i]);
    int64_t v;
    std::memcpy(&v, buf.RowAt(i), 8);
    EXPECT_EQ(v, i);
  }
}

TEST(RowBuffer, ClearResets) {
  RowBuffer buf(16);
  std::vector<std::byte> row(16);
  buf.Append(row.data());
  buf.Clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.TotalBytes(), 0u);
}

}  // namespace
}  // namespace pjoin
