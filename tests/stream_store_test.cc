// Tests for the non-temporal streaming copy helper and related formatting
// utilities.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "partition/stream_store.h"
#include "util/aligned_buffer.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace pjoin {
namespace {

TEST(StreamStore, CopiesExactBytes) {
  AlignedBuffer src(4096), dst(4096);
  Rng rng(1);
  for (size_t i = 0; i < 4096; i += 8) {
    uint64_t v = rng.Next();
    std::memcpy(src.data() + i, &v, 8);
  }
  std::memset(dst.data(), 0xAB, 4096);
  StreamCopyAligned(dst.data(), src.data(), 4096);
  StreamFence();
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), 4096), 0);
}

TEST(StreamStore, PartialBufferRegionsUntouched) {
  AlignedBuffer src(256), dst(512);
  std::memset(src.data(), 0x11, 256);
  std::memset(dst.data(), 0x22, 512);
  StreamCopyAligned(dst.data(), src.data(), 256);
  StreamFence();
  for (size_t i = 0; i < 256; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(dst.data()[i]), 0x11u);
  }
  for (size_t i = 256; i < 512; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(dst.data()[i]), 0x22u);
  }
}

TEST(StreamStore, ManySmallBlocks) {
  // 64-byte blocks at varying aligned offsets (the SWWCB flush pattern).
  AlignedBuffer src(64), dst(64 * 128);
  Rng rng(2);
  for (int block = 0; block < 128; ++block) {
    for (size_t i = 0; i < 64; ++i) {
      src.data()[i] = static_cast<std::byte>(rng.Next() & 0xFF);
    }
    StreamCopyAligned(dst.data() + block * 64, src.data(), 64);
    StreamFence();
    ASSERT_EQ(std::memcmp(dst.data() + block * 64, src.data(), 64), 0);
  }
}

TEST(TablePrinterBytes, UnitSelection) {
  EXPECT_EQ(TablePrinter::Bytes(512), "512 B");
  EXPECT_EQ(TablePrinter::Bytes(32 * 1024.0), "32.0 KiB");
  EXPECT_EQ(TablePrinter::Bytes(19.0 * 1024 * 1024), "19.0 MiB");
  EXPECT_EQ(TablePrinter::Bytes(2.5 * 1024 * 1024 * 1024), "2.5 GiB");
}

}  // namespace
}  // namespace pjoin
