// Shared helpers for pipeline-level tests: an in-memory row source, a
// collecting sink, and a nested-loop reference join covering every kind.
#ifndef PJOIN_TESTS_TEST_UTIL_H_
#define PJOIN_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "exec/batch.h"
#include "exec/morsel.h"
#include "exec/pipeline.h"
#include "join/join_types.h"
#include "storage/row_layout.h"

namespace pjoin {

// Rows of int64 columns, used as plain relations in tests.
using IntRows = std::vector<std::vector<int64_t>>;

// Builds an N-int64-column layout named c0, c1, ...
inline RowLayout IntLayout(int columns) {
  std::vector<RowField> fields;
  for (int i = 0; i < columns; ++i) {
    fields.push_back(RowField{"c" + std::to_string(i) + "_x",
                              DataType::kInt64, 8, 0});
  }
  return RowLayout(std::move(fields));
}

// Pipeline source producing batches from IntRows.
class IntRowsSource : public Source {
 public:
  IntRowsSource(const RowLayout* layout, const IntRows* rows)
      : layout_(layout), rows_(rows), queue_(rows->size(), 2048) {}

  bool ProduceMorsel(Operator& consumer, ThreadContext& ctx) override {
    Morsel m = queue_.Next();
    if (m.empty()) return false;
    BatchScratch scratch;
    scratch.Bind(layout_);
    Batch batch = scratch.Start();
    for (uint64_t r = m.begin; r < m.end; ++r) {
      std::byte* slot = scratch.AppendSlot(batch);
      const auto& row = (*rows_)[r];
      for (int c = 0; c < layout_->num_fields(); ++c) {
        layout_->SetInt64(slot, c, row[c]);
      }
      if (scratch.Full(batch)) {
        consumer.Consume(batch, ctx);
        batch = scratch.Start();
      }
    }
    if (batch.size > 0) consumer.Consume(batch, ctx);
    return true;
  }
  const RowLayout* OutputLayout() const override { return layout_; }

 private:
  const RowLayout* layout_;
  const IntRows* rows_;
  MorselQueue queue_;
};

// Sink collecting all numeric fields of incoming rows (thread-safe).
class IntCollectSink : public Operator {
 public:
  explicit IntCollectSink(const RowLayout* layout) : layout_(layout) {}

  void Consume(Batch& batch, ThreadContext&) override {
    std::vector<std::vector<int64_t>> local;
    local.reserve(batch.size);
    for (uint32_t i = 0; i < batch.size; ++i) {
      std::vector<int64_t> row(layout_->num_fields());
      for (int c = 0; c < layout_->num_fields(); ++c) {
        row[c] = layout_->GetNumeric(batch.Row(i), c);
      }
      local.push_back(std::move(row));
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& r : local) rows_.push_back(std::move(r));
  }
  const RowLayout* OutputLayout() const override { return layout_; }

  // Rows sorted lexicographically (output order is nondeterministic).
  IntRows SortedRows() const {
    IntRows copy = rows_;
    std::sort(copy.begin(), copy.end());
    return copy;
  }
  uint64_t count() const { return rows_.size(); }

 private:
  const RowLayout* layout_;
  mutable std::mutex mu_;
  IntRows rows_;
};

// Nested-loop reference join over IntRows. Key is column `key_col` on both
// sides. Output schema mirrors the join operators:
//   pair kinds:   build cols ++ probe cols (absent side zero-filled)
//   probe-only:   zeros(build) ++ probe cols
//   build-only:   build cols ++ zeros(probe)
//   mark:         zeros(build) ++ probe cols ++ [mark]
inline IntRows ReferenceJoin(const IntRows& build, const IntRows& probe,
                             int key_col, JoinKind kind, int build_cols,
                             int probe_cols) {
  IntRows out;
  std::multimap<int64_t, const std::vector<int64_t>*> index;
  for (const auto& b : build) index.emplace(b[key_col], &b);

  auto pair_row = [&](const std::vector<int64_t>* b,
                      const std::vector<int64_t>* p) {
    std::vector<int64_t> row;
    for (int c = 0; c < build_cols; ++c) row.push_back(b ? (*b)[c] : 0);
    for (int c = 0; c < probe_cols; ++c) row.push_back(p ? (*p)[c] : 0);
    return row;
  };

  std::vector<char> build_matched(build.size(), 0);
  std::map<const std::vector<int64_t>*, size_t> build_index;
  for (size_t i = 0; i < build.size(); ++i) build_index[&build[i]] = i;

  for (const auto& p : probe) {
    auto [lo, hi] = index.equal_range(p[key_col]);
    bool matched = lo != hi;
    for (auto it = lo; it != hi; ++it) {
      build_matched[build_index[it->second]] = 1;
      if (kind == JoinKind::kInner || kind == JoinKind::kLeftOuter ||
          kind == JoinKind::kRightOuter) {
        out.push_back(pair_row(it->second, &p));
      }
    }
    switch (kind) {
      case JoinKind::kProbeSemi:
        if (matched) out.push_back(pair_row(nullptr, &p));
        break;
      case JoinKind::kProbeAnti:
        if (!matched) out.push_back(pair_row(nullptr, &p));
        break;
      case JoinKind::kLeftOuter:
        if (!matched) out.push_back(pair_row(nullptr, &p));
        break;
      case JoinKind::kMark: {
        auto row = pair_row(nullptr, &p);
        row.push_back(matched ? 1 : 0);
        out.push_back(std::move(row));
        break;
      }
      default:
        break;
    }
  }
  for (size_t i = 0; i < build.size(); ++i) {
    const bool m = build_matched[i] != 0;
    if ((kind == JoinKind::kBuildSemi && m) ||
        (kind == JoinKind::kBuildAnti && !m) ||
        (kind == JoinKind::kRightOuter && !m)) {
      out.push_back(pair_row(&build[i], nullptr));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pjoin

#endif  // PJOIN_TESTS_TEST_UTIL_H_
