// Shared helpers for pipeline-level tests: an in-memory row source, a
// collecting sink, and a nested-loop reference join covering every kind.
#ifndef PJOIN_TESTS_TEST_UTIL_H_
#define PJOIN_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "engine/plan.h"
#include "exec/batch.h"
#include "exec/morsel.h"
#include "exec/pipeline.h"
#include "join/join_types.h"
#include "storage/row_layout.h"
#include "storage/table.h"
#include "util/check.h"

namespace pjoin {

// Rows of int64 columns, used as plain relations in tests.
using IntRows = std::vector<std::vector<int64_t>>;

// Builds an N-int64-column layout named c0, c1, ...
inline RowLayout IntLayout(int columns) {
  std::vector<RowField> fields;
  for (int i = 0; i < columns; ++i) {
    fields.push_back(RowField{"c" + std::to_string(i) + "_x",
                              DataType::kInt64, 8, 0});
  }
  return RowLayout(std::move(fields));
}

// Pipeline source producing batches from IntRows.
class IntRowsSource : public Source {
 public:
  IntRowsSource(const RowLayout* layout, const IntRows* rows)
      : layout_(layout), rows_(rows), queue_(rows->size(), 2048) {}

  bool ProduceMorsel(Operator& consumer, ThreadContext& ctx) override {
    Morsel m = queue_.Next();
    if (m.empty()) return false;
    BatchScratch scratch;
    scratch.Bind(layout_);
    Batch batch = scratch.Start();
    for (uint64_t r = m.begin; r < m.end; ++r) {
      std::byte* slot = scratch.AppendSlot(batch);
      const auto& row = (*rows_)[r];
      for (int c = 0; c < layout_->num_fields(); ++c) {
        layout_->SetInt64(slot, c, row[c]);
      }
      if (scratch.Full(batch)) {
        consumer.Consume(batch, ctx);
        batch = scratch.Start();
      }
    }
    if (batch.size > 0) consumer.Consume(batch, ctx);
    return true;
  }
  const RowLayout* OutputLayout() const override { return layout_; }

 private:
  const RowLayout* layout_;
  const IntRows* rows_;
  MorselQueue queue_;
};

// Sink collecting all numeric fields of incoming rows (thread-safe).
class IntCollectSink : public Operator {
 public:
  explicit IntCollectSink(const RowLayout* layout) : layout_(layout) {}

  void Consume(Batch& batch, ThreadContext&) override {
    std::vector<std::vector<int64_t>> local;
    local.reserve(batch.size);
    for (uint32_t i = 0; i < batch.size; ++i) {
      std::vector<int64_t> row(layout_->num_fields());
      for (int c = 0; c < layout_->num_fields(); ++c) {
        row[c] = layout_->GetNumeric(batch.Row(i), c);
      }
      local.push_back(std::move(row));
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& r : local) rows_.push_back(std::move(r));
  }
  const RowLayout* OutputLayout() const override { return layout_; }

  // Rows sorted lexicographically (output order is nondeterministic).
  IntRows SortedRows() const {
    IntRows copy = rows_;
    std::sort(copy.begin(), copy.end());
    return copy;
  }
  uint64_t count() const { return rows_.size(); }

 private:
  const RowLayout* layout_;
  mutable std::mutex mu_;
  IntRows rows_;
};

// Nested-loop reference join over IntRows. Key is column `key_col` on both
// sides. Output schema mirrors the join operators:
//   pair kinds:   build cols ++ probe cols (absent side zero-filled)
//   probe-only:   zeros(build) ++ probe cols
//   build-only:   build cols ++ zeros(probe)
//   mark:         zeros(build) ++ probe cols ++ [mark]
inline IntRows ReferenceJoin(const IntRows& build, const IntRows& probe,
                             int key_col, JoinKind kind, int build_cols,
                             int probe_cols) {
  IntRows out;
  std::multimap<int64_t, const std::vector<int64_t>*> index;
  for (const auto& b : build) index.emplace(b[key_col], &b);

  auto pair_row = [&](const std::vector<int64_t>* b,
                      const std::vector<int64_t>* p) {
    std::vector<int64_t> row;
    for (int c = 0; c < build_cols; ++c) row.push_back(b ? (*b)[c] : 0);
    for (int c = 0; c < probe_cols; ++c) row.push_back(p ? (*p)[c] : 0);
    return row;
  };

  std::vector<char> build_matched(build.size(), 0);
  std::map<const std::vector<int64_t>*, size_t> build_index;
  for (size_t i = 0; i < build.size(); ++i) build_index[&build[i]] = i;

  for (const auto& p : probe) {
    auto [lo, hi] = index.equal_range(p[key_col]);
    bool matched = lo != hi;
    for (auto it = lo; it != hi; ++it) {
      build_matched[build_index[it->second]] = 1;
      if (kind == JoinKind::kInner || kind == JoinKind::kLeftOuter ||
          kind == JoinKind::kRightOuter) {
        out.push_back(pair_row(it->second, &p));
      }
    }
    switch (kind) {
      case JoinKind::kProbeSemi:
        if (matched) out.push_back(pair_row(nullptr, &p));
        break;
      case JoinKind::kProbeAnti:
        if (!matched) out.push_back(pair_row(nullptr, &p));
        break;
      case JoinKind::kLeftOuter:
        if (!matched) out.push_back(pair_row(nullptr, &p));
        break;
      case JoinKind::kMark: {
        auto row = pair_row(nullptr, &p);
        row.push_back(matched ? 1 : 0);
        out.push_back(std::move(row));
        break;
      }
      default:
        break;
    }
  }
  for (size_t i = 0; i < build.size(); ++i) {
    const bool m = build_matched[i] != 0;
    if ((kind == JoinKind::kBuildSemi && m) ||
        (kind == JoinKind::kBuildAnti && !m) ||
        (kind == JoinKind::kRightOuter && !m)) {
      out.push_back(pair_row(&build[i], nullptr));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// --- Random multi-join plan generator + interpreter oracle ---------------
//
// Fuel for the rewrite-equivalence fuzz suite: RandomPlanGenerator::Next()
// builds a connected random join tree over 2-6 fresh integer tables (skewed
// key domains, mixed join kinds, modulus filters at random heights) rooted
// in an aggregate. OracleEval() interprets the same tree with nested-loop
// joins and exact int64 aggregates; the filter registry lets it evaluate
// kFilter nodes from their declared semantics instead of calling lambdas.

struct GeneratedPlan {
  struct ModFilter {
    std::string column;
    int64_t modulus = 2;  // keep rows where column % modulus != 0
  };
  std::vector<std::unique_ptr<Table>> tables;
  std::unique_ptr<PlanNode> plan;                 // kAgg root
  std::map<std::string, ModFilter> filters;       // keyed by FilterDef label
};

class RandomPlanGenerator {
 public:
  // xorshift64: fully deterministic for a fixed seed across platforms.
  explicit RandomPlanGenerator(uint64_t seed)
      : state_(seed != 0 ? seed : 0x9E3779B97F4A7C15ull) {}

  GeneratedPlan Next() {
    GeneratedPlan g;
    const uint64_t serial = serial_++;
    const int num_rel = 2 + static_cast<int>(Rand() % 5);  // 2..6 relations

    struct Rel {
      std::string a, b, v;
    };
    std::vector<Rel> rel;
    for (int i = 0; i < num_rel; ++i) {
      const std::string base =
          "t" + std::to_string(serial) + "_" + std::to_string(i);
      Rel r{base + "_a", base + "_b", base + "_v"};
      auto table = std::make_unique<Table>(
          base, Schema({ColumnDef{r.a, DataType::kInt64, 0},
                        ColumnDef{r.b, DataType::kInt64, 0},
                        ColumnDef{r.v, DataType::kInt64, 0}}));
      const uint64_t rows = 4 + Rand() % 300;
      const int64_t dom_a = 2 + static_cast<int64_t>(Rand() % 48);
      const int64_t dom_b = 2 + static_cast<int64_t>(Rand() % 48);
      const bool skew = Rand() % 3 == 0;  // quadratic pile-up at low keys
      table->Reserve(rows);
      for (uint64_t j = 0; j < rows; ++j) {
        table->column(0).AppendInt64(Draw(dom_a, skew));
        table->column(1).AppendInt64(Draw(dom_b, skew));
        table->column(2).AppendInt64(static_cast<int64_t>(Rand() % 1000));
        table->FinishRow();
      }
      rel.push_back(r);
      g.tables.push_back(std::move(table));
    }

    // Scans, occasionally pre-filtered. Every filter column stays visible
    // at the top (joins expose both sides), so correlated filters can also
    // land far above their scan.
    auto leaf = [&](int i) {
      std::unique_ptr<PlanNode> n = ScanTable(g.tables[i].get());
      if (Rand() % 4 == 0) n = AddFilter(std::move(n), PickColumn(rel[i]), &g);
      return n;
    };

    // Fold relations into a connected tree: each new relation joins on a
    // key of a randomly chosen already-joined relation, with random
    // build/probe orientation and a kind mix biased toward inner joins.
    std::unique_ptr<PlanNode> tree = leaf(0);
    std::vector<int> joined = {0};
    for (int i = 1; i < num_rel; ++i) {
      const int partner = joined[Rand() % joined.size()];
      const std::string tree_key =
          Rand() % 2 == 0 ? rel[partner].a : rel[partner].b;
      const std::string new_key = Rand() % 2 == 0 ? rel[i].a : rel[i].b;
      const JoinKind kind = PickKind();
      const std::string mark =
          kind == JoinKind::kMark
              ? "t" + std::to_string(serial) + "_mk" + std::to_string(i)
              : "";
      if (Rand() % 2 == 0) {
        tree =
            Join(leaf(i), std::move(tree), {{new_key, tree_key}}, kind, mark);
      } else {
        tree =
            Join(std::move(tree), leaf(i), {{tree_key, new_key}}, kind, mark);
      }
      joined.push_back(i);
      if (Rand() % 3 == 0) {
        tree = AddFilter(std::move(tree),
                         PickColumn(rel[joined[Rand() % joined.size()]]), &g);
      }
    }

    std::vector<std::string> group_by;
    if (Rand() % 2 == 0) {
      const Rel& gr = rel[Rand() % num_rel];
      group_by.push_back(Rand() % 2 == 0 ? gr.a : gr.b);
    }
    g.plan = Aggregate(
        std::move(tree), std::move(group_by),
        {AggDef::CountStar("cnt"), AggDef::Sum(rel[Rand() % num_rel].v, "s")});
    return g;
  }

 private:
  uint64_t Rand() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

  int64_t Draw(int64_t domain, bool skew) {
    int64_t v = static_cast<int64_t>(Rand() % static_cast<uint64_t>(domain));
    return skew ? v * v / domain : v;
  }

  template <typename Rel>
  std::string PickColumn(const Rel& r) {
    const uint64_t pick = Rand() % 3;
    return pick == 0 ? r.a : pick == 1 ? r.b : r.v;
  }

  std::unique_ptr<PlanNode> AddFilter(std::unique_ptr<PlanNode> node,
                                      const std::string& column,
                                      GeneratedPlan* g) {
    const int64_t m = 2 + static_cast<int64_t>(Rand() % 5);
    const std::string label = column + "%" + std::to_string(m);
    if (g->filters.count(label) != 0) return node;  // keep labels unique
    g->filters[label] = GeneratedPlan::ModFilter{column, m};
    FilterDef def;
    def.label = label;
    def.inputs = {column};
    def.fn = [m](const RowLayout& l, const std::byte* row, const int* f) {
      return l.GetNumeric(row, f[0]) % m != 0;
    };
    return Filter(std::move(node), std::move(def));
  }

  JoinKind PickKind() {
    switch (Rand() % 13) {
      case 6:
        return JoinKind::kProbeSemi;
      case 7:
        return JoinKind::kProbeAnti;
      case 8:
        return JoinKind::kBuildSemi;
      case 9:
        return JoinKind::kBuildAnti;
      case 10:
        return JoinKind::kLeftOuter;
      case 11:
        return JoinKind::kRightOuter;
      case 12:
        return JoinKind::kMark;
      default:
        return JoinKind::kInner;
    }
  }

  uint64_t state_;
  uint64_t serial_ = 0;
};

// A materialized intermediate relation inside the oracle interpreter.
struct OracleRel {
  std::vector<std::string> names;
  IntRows rows;

  int IndexOf(const std::string& name) const {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<int>(i);
    }
    return -1;
  }
};

// Evaluates a generated plan bottom-up with indexed nested-loop joins,
// mirroring the engine's output conventions: joins emit build columns then
// probe columns (absent side zero-filled, mark appended), scalar aggregates
// over empty input yield one zero row, rows come back sorted.
inline OracleRel OracleEval(const PlanNode& node, const GeneratedPlan& g) {
  switch (node.kind) {
    case PlanNode::Kind::kScan: {
      OracleRel rel;
      const Table& t = *node.table;
      const auto& cols = t.schema().columns();
      for (const auto& c : cols) rel.names.push_back(c.name);
      rel.rows.reserve(t.num_rows());
      for (uint64_t r = 0; r < t.num_rows(); ++r) {
        std::vector<int64_t> row;
        row.reserve(cols.size());
        for (size_t c = 0; c < cols.size(); ++c) {
          row.push_back(t.column(static_cast<int>(c)).GetInt64(r));
        }
        rel.rows.push_back(std::move(row));
      }
      return rel;
    }
    case PlanNode::Kind::kFilter: {
      OracleRel in = OracleEval(*node.child, g);
      auto it = g.filters.find(node.filter.label);
      PJOIN_CHECK_MSG(it != g.filters.end(), node.filter.label.c_str());
      const int idx = in.IndexOf(it->second.column);
      PJOIN_CHECK(idx >= 0);
      OracleRel out;
      out.names = in.names;
      for (auto& row : in.rows) {
        if (row[idx] % it->second.modulus != 0) {
          out.rows.push_back(std::move(row));
        }
      }
      return out;
    }
    case PlanNode::Kind::kJoin: {
      OracleRel b = OracleEval(*node.build, g);
      OracleRel p = OracleEval(*node.probe, g);
      OracleRel out;
      out.names = b.names;
      out.names.insert(out.names.end(), p.names.begin(), p.names.end());
      if (node.join_kind == JoinKind::kMark) {
        out.names.push_back(node.mark_name);
      }
      std::vector<int> bk, pk;
      for (const auto& key : node.keys) {
        bk.push_back(b.IndexOf(key.first));
        pk.push_back(p.IndexOf(key.second));
        PJOIN_CHECK(bk.back() >= 0 && pk.back() >= 0);
      }
      const size_t bc = b.names.size();
      const size_t pc = p.names.size();
      auto emit = [&](const std::vector<int64_t>* br,
                      const std::vector<int64_t>* pr) {
        std::vector<int64_t> row;
        row.reserve(bc + pc + 1);
        for (size_t c = 0; c < bc; ++c) row.push_back(br ? (*br)[c] : 0);
        for (size_t c = 0; c < pc; ++c) row.push_back(pr ? (*pr)[c] : 0);
        return row;
      };
      std::map<std::vector<int64_t>, std::vector<size_t>> index;
      for (size_t i = 0; i < b.rows.size(); ++i) {
        std::vector<int64_t> key;
        for (int k : bk) key.push_back(b.rows[i][k]);
        index[std::move(key)].push_back(i);
      }
      std::vector<char> build_matched(b.rows.size(), 0);
      std::vector<int64_t> probe_key(pk.size());
      for (const auto& pr : p.rows) {
        for (size_t k = 0; k < pk.size(); ++k) probe_key[k] = pr[pk[k]];
        auto it = index.find(probe_key);
        const bool matched = it != index.end();
        if (matched) {
          for (size_t i : it->second) {
            build_matched[i] = 1;
            if (node.join_kind == JoinKind::kInner ||
                node.join_kind == JoinKind::kLeftOuter ||
                node.join_kind == JoinKind::kRightOuter) {
              out.rows.push_back(emit(&b.rows[i], &pr));
            }
          }
        }
        switch (node.join_kind) {
          case JoinKind::kProbeSemi:
            if (matched) out.rows.push_back(emit(nullptr, &pr));
            break;
          case JoinKind::kProbeAnti:
            if (!matched) out.rows.push_back(emit(nullptr, &pr));
            break;
          case JoinKind::kLeftOuter:
            if (!matched) out.rows.push_back(emit(nullptr, &pr));
            break;
          case JoinKind::kMark: {
            auto row = emit(nullptr, &pr);
            row.push_back(matched ? 1 : 0);
            out.rows.push_back(std::move(row));
            break;
          }
          default:
            break;
        }
      }
      for (size_t i = 0; i < b.rows.size(); ++i) {
        const bool m = build_matched[i] != 0;
        if ((node.join_kind == JoinKind::kBuildSemi && m) ||
            (node.join_kind == JoinKind::kBuildAnti && !m) ||
            (node.join_kind == JoinKind::kRightOuter && !m)) {
          out.rows.push_back(emit(&b.rows[i], nullptr));
        }
      }
      return out;
    }
    case PlanNode::Kind::kAgg: {
      OracleRel in = OracleEval(*node.child, g);
      std::vector<int> gidx;
      for (const auto& name : node.group_by) {
        gidx.push_back(in.IndexOf(name));
        PJOIN_CHECK(gidx.back() >= 0);
      }
      std::vector<int> aidx;
      for (const auto& agg : node.aggs) {
        PJOIN_CHECK_MSG(agg.op == AggDef::Op::kCountStar ||
                            agg.op == AggDef::Op::kCount ||
                            agg.op == AggDef::Op::kSum,
                        "oracle: aggregate op not generated");
        aidx.push_back(agg.op == AggDef::Op::kCountStar
                           ? -1
                           : in.IndexOf(agg.input));
      }
      std::map<std::vector<int64_t>, std::vector<int64_t>> groups;
      for (const auto& row : in.rows) {
        std::vector<int64_t> key;
        for (int gi : gidx) key.push_back(row[gi]);
        auto [it, inserted] =
            groups.emplace(std::move(key),
                           std::vector<int64_t>(node.aggs.size(), 0));
        for (size_t a = 0; a < node.aggs.size(); ++a) {
          if (node.aggs[a].op == AggDef::Op::kSum) {
            it->second[a] += row[aidx[a]];
          } else {
            it->second[a]++;  // kCountStar / kCount over non-null int64s
          }
        }
      }
      // A scalar aggregate over empty input still yields one zero row,
      // matching HashAggOp.
      if (groups.empty() && node.group_by.empty()) {
        groups.emplace(std::vector<int64_t>{},
                       std::vector<int64_t>(node.aggs.size(), 0));
      }
      OracleRel out;
      out.names = node.group_by;
      for (const auto& agg : node.aggs) out.names.push_back(agg.name);
      for (const auto& [key, accs] : groups) {
        std::vector<int64_t> row = key;
        row.insert(row.end(), accs.begin(), accs.end());
        out.rows.push_back(std::move(row));
      }
      std::sort(out.rows.begin(), out.rows.end());
      return out;
    }
    case PlanNode::Kind::kMap:
      PJOIN_CHECK_MSG(false, "oracle: kMap is never generated");
  }
  return {};
}

}  // namespace pjoin

#endif  // PJOIN_TESTS_TEST_UTIL_H_
