// Tests for the JCC-H-style skewed TPC-H generator extension.
#include <gtest/gtest.h>

#include <map>

#include "engine/executor.h"
#include "tpch/gen.h"
#include "tpch/queries.h"

namespace pjoin {
namespace {

TEST(TpchSkew, SkewConcentratesForeignKeys) {
  auto uniform = GenerateTpch(0.01, 19, 0.0);
  auto skewed = GenerateTpch(0.01, 19, 1.2);

  auto top_partkey_share = [](const TpchDb& db) {
    std::map<int64_t, uint64_t> counts;
    for (uint64_t r = 0; r < db.lineitem.num_rows(); ++r) {
      counts[db.lineitem.column(1).GetInt64(r)]++;
    }
    uint64_t max_count = 0;
    for (const auto& [k, n] : counts) max_count = std::max(max_count, n);
    return static_cast<double>(max_count) / db.lineitem.num_rows();
  };
  EXPECT_GT(top_partkey_share(*skewed), top_partkey_share(*uniform) * 20);
}

TEST(TpchSkew, ForeignKeysStayValid) {
  auto db = GenerateTpch(0.01, 19, 1.5);
  const int64_t parts = static_cast<int64_t>(db->part.num_rows());
  const int64_t customers = static_cast<int64_t>(db->customer.num_rows());
  for (uint64_t r = 0; r < db->lineitem.num_rows(); r += 3) {
    int64_t pk = db->lineitem.column(1).GetInt64(r);
    ASSERT_GE(pk, 1);
    ASSERT_LE(pk, parts);
  }
  for (uint64_t r = 0; r < db->orders.num_rows(); r += 3) {
    int64_t ck = db->orders.column(1).GetInt64(r);
    ASSERT_GE(ck, 1);
    ASSERT_LE(ck, customers);
    ASSERT_NE(ck % 3, 0);
  }
}

TEST(TpchSkew, QueriesStillAgreeAcrossStrategies) {
  auto db = GenerateTpch(0.01, 19, 1.0);
  ThreadPool pool(2);
  for (int qid : {3, 5, 14}) {
    const TpchQuery& query = GetTpchQuery(qid);
    QueryResult reference;
    bool first = true;
    for (JoinStrategy s : {JoinStrategy::kBHJ, JoinStrategy::kRJ,
                           JoinStrategy::kBRJ}) {
      ExecOptions options;
      options.join_strategy = s;
      options.num_threads = 2;
      QueryResult result = query.run(*db, options, nullptr, &pool);
      if (first) {
        reference = result;
        first = false;
      } else {
        ASSERT_TRUE(result.ApproxEquals(reference, 1e-6))
            << "Q" << qid << " " << JoinStrategyName(s);
      }
    }
  }
}

}  // namespace
}  // namespace pjoin
