// TPC-H generator invariants and cross-strategy query equivalence.
//
// The core guarantee behind the paper's methodology: replacing every join in
// a query plan with any of BHJ / RJ / BRJ / adaptive BRJ — with or without
// late materialization — must not change any query result.
#include <gtest/gtest.h>

#include <set>

#include "engine/executor.h"
#include "tpch/gen.h"
#include "tpch/queries.h"

namespace pjoin {
namespace {

class TpchFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = GenerateTpch(0.01).release();
    pool_ = new ThreadPool(2);
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
    delete pool_;
    pool_ = nullptr;
  }

  static TpchDb* db_;
  static ThreadPool* pool_;
};

TpchDb* TpchFixture::db_ = nullptr;
ThreadPool* TpchFixture::pool_ = nullptr;

TEST_F(TpchFixture, Cardinalities) {
  EXPECT_EQ(db_->region.num_rows(), 5u);
  EXPECT_EQ(db_->nation.num_rows(), 25u);
  EXPECT_EQ(db_->supplier.num_rows(), 100u);
  EXPECT_EQ(db_->customer.num_rows(), 1500u);
  EXPECT_EQ(db_->part.num_rows(), 2000u);
  EXPECT_EQ(db_->partsupp.num_rows(), 8000u);
  EXPECT_EQ(db_->orders.num_rows(), 15000u);
  // 1..7 lineitems per order, ~4 on average.
  EXPECT_GT(db_->lineitem.num_rows(), db_->orders.num_rows() * 2);
  EXPECT_LT(db_->lineitem.num_rows(), db_->orders.num_rows() * 7);
}

TEST_F(TpchFixture, Deterministic) {
  auto db2 = GenerateTpch(0.01);
  EXPECT_EQ(db_->lineitem.num_rows(), db2->lineitem.num_rows());
  EXPECT_EQ(db_->lineitem.column(5).GetFloat64(100),
            db2->lineitem.column(5).GetFloat64(100));
  EXPECT_EQ(db_->part.column(1).GetString(7), db2->part.column(1).GetString(7));
}

TEST_F(TpchFixture, ForeignKeyIntegrity) {
  const int64_t suppliers = static_cast<int64_t>(db_->supplier.num_rows());
  const int64_t parts = static_cast<int64_t>(db_->part.num_rows());
  const int64_t customers = static_cast<int64_t>(db_->customer.num_rows());
  const int64_t orders = static_cast<int64_t>(db_->orders.num_rows());
  for (uint64_t r = 0; r < db_->lineitem.num_rows(); ++r) {
    int64_t ok = db_->lineitem.column(0).GetInt64(r);
    int64_t pk = db_->lineitem.column(1).GetInt64(r);
    int64_t sk = db_->lineitem.column(2).GetInt64(r);
    ASSERT_GE(ok, 1);
    ASSERT_LE(ok, orders);
    ASSERT_GE(pk, 1);
    ASSERT_LE(pk, parts);
    ASSERT_GE(sk, 1);
    ASSERT_LE(sk, suppliers);
  }
  for (uint64_t r = 0; r < db_->orders.num_rows(); ++r) {
    int64_t ck = db_->orders.column(1).GetInt64(r);
    ASSERT_GE(ck, 1);
    ASSERT_LE(ck, customers);
    ASSERT_NE(ck % 3, 0) << "only 2/3 of customers place orders";
  }
}

TEST_F(TpchFixture, LineitemSuppliersComeFromPartsupp) {
  // Every (l_partkey, l_suppkey) must exist in partsupp — Q9/Q20 rely on it.
  std::set<std::pair<int64_t, int64_t>> ps;
  for (uint64_t r = 0; r < db_->partsupp.num_rows(); ++r) {
    ps.emplace(db_->partsupp.column(0).GetInt64(r),
               db_->partsupp.column(1).GetInt64(r));
  }
  for (uint64_t r = 0; r < db_->lineitem.num_rows(); r += 7) {
    std::pair<int64_t, int64_t> key{db_->lineitem.column(1).GetInt64(r),
                                    db_->lineitem.column(2).GetInt64(r)};
    ASSERT_TRUE(ps.count(key)) << key.first << "/" << key.second;
  }
}

TEST_F(TpchFixture, DatesConsistent) {
  for (uint64_t r = 0; r < db_->lineitem.num_rows(); r += 13) {
    int32_t ship = db_->lineitem.column(10).GetInt32(r);
    int32_t receipt = db_->lineitem.column(12).GetInt32(r);
    ASSERT_LT(ship, receipt);
    ASSERT_GE(ship, TpchStartDate());
    ASSERT_LE(receipt, TpchEndDate() + 200);
  }
}

TEST_F(TpchFixture, ValueDomains) {
  std::set<std::string> regions, segments, modes;
  for (uint64_t r = 0; r < db_->region.num_rows(); ++r) {
    regions.insert(db_->region.column(1).GetString(r));
  }
  EXPECT_EQ(regions.size(), 5u);
  for (uint64_t r = 0; r < db_->customer.num_rows(); ++r) {
    std::string s = db_->customer.column(5).GetString(r);
    segments.insert(s.substr(0, s.find(' ') == std::string::npos
                                    ? s.size()
                                    : std::string::npos));
  }
  EXPECT_LE(segments.size(), 6u);
  for (uint64_t r = 0; r < db_->lineitem.num_rows(); r += 11) {
    modes.insert(db_->lineitem.column(14).GetString(r));
  }
  EXPECT_LE(modes.size(), 7u);
}

TEST_F(TpchFixture, JoinCatalogCounts59Joins) {
  EXPECT_EQ(TotalTpchJoins(), 59);
  EXPECT_EQ(TpchQueries().size(), 19u);
}

// Every query must produce identical results under all four join strategies
// and both materialization strategies.
class TpchQueryEquivalence : public TpchFixture,
                             public ::testing::WithParamInterface<int> {};

TEST_P(TpchQueryEquivalence, AllStrategiesAgree) {
  const TpchQuery& query = GetTpchQuery(GetParam());
  QueryResult reference;
  bool first = true;
  for (JoinStrategy s : {JoinStrategy::kBHJ, JoinStrategy::kRJ,
                         JoinStrategy::kBRJ, JoinStrategy::kBRJAdaptive}) {
    for (bool lm : {false, true}) {
      ExecOptions options;
      options.join_strategy = s;
      options.late_materialization = lm;
      options.num_threads = 2;
      QueryStats stats;
      QueryResult result = query.run(*db_, options, &stats, pool_);
      EXPECT_GT(stats.source_tuples, 0u);
      if (first) {
        reference = result;
        first = false;
      } else {
        ASSERT_TRUE(result.ApproxEquals(reference, 1e-6))
            << "Q" << query.id << " " << JoinStrategyName(s)
            << (lm ? " LM" : " EM") << "\nref:\n"
            << reference.ToString() << "\ngot:\n"
            << result.ToString();
      }
    }
  }
  // Every query must return something at SF 0.01 — empty results would make
  // the benchmark comparisons vacuous. Q20 is exempt: its forest/CANADA
  // parameters are so selective that a 20k-part sample may legitimately
  // leave no qualifying supplier.
  if (query.id != 20) {
    EXPECT_GT(reference.num_rows(), 0u) << "Q" << query.id;
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchQueryEquivalence,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 10, 11, 12, 14,
                                           15, 16, 17, 18, 19, 20, 21, 22),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

// Per-join overrides must not change results either (Figure 12 machinery).
TEST_F(TpchFixture, PerJoinOverridesPreserveResults) {
  const TpchQuery& q5 = GetTpchQuery(5);
  ExecOptions base;
  base.join_strategy = JoinStrategy::kBHJ;
  base.num_threads = 2;
  QueryResult reference = q5.run(*db_, base, nullptr, pool_);
  for (int j = 0; j < q5.num_joins; ++j) {
    ExecOptions mixed = base;
    mixed.join_overrides[j] = JoinStrategy::kBRJ;
    QueryResult result = q5.run(*db_, mixed, nullptr, pool_);
    ASSERT_TRUE(result.ApproxEquals(reference, 1e-6)) << "override join " << j;
  }
}

}  // namespace
}  // namespace pjoin
