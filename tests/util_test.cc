// Unit tests for src/util: hashing, RNG, Zipf, bit tricks, buffers, env.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "util/aligned_buffer.h"
#include "util/bitutil.h"
#include "util/byte_counter.h"
#include "util/cpu_info.h"
#include "util/env.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/zipf.h"

namespace pjoin {
namespace {

TEST(BitUtil, NextPow2) {
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1000), 1024u);
  EXPECT_EQ(NextPow2(1024), 1024u);
}

TEST(BitUtil, Log2Pow2) {
  EXPECT_EQ(Log2Pow2(1), 0);
  EXPECT_EQ(Log2Pow2(2), 1);
  EXPECT_EQ(Log2Pow2(4096), 12);
}

TEST(BitUtil, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(8), 3);
  EXPECT_EQ(CeilLog2(9), 4);
}

TEST(BitUtil, IsPow2) {
  EXPECT_TRUE(IsPow2(1));
  EXPECT_TRUE(IsPow2(64));
  EXPECT_FALSE(IsPow2(0));
  EXPECT_FALSE(IsPow2(48));
}

TEST(BitUtil, AlignUp) {
  EXPECT_EQ(AlignUp(0, 64), 0u);
  EXPECT_EQ(AlignUp(1, 64), 64u);
  EXPECT_EQ(AlignUp(64, 64), 64u);
  EXPECT_EQ(AlignUp(65, 64), 128u);
}

TEST(Hash, Int64Deterministic) {
  EXPECT_EQ(HashInt64(42), HashInt64(42));
  EXPECT_NE(HashInt64(42), HashInt64(43));
}

TEST(Hash, Int64SpreadsLowBits) {
  // The radix partitioner uses the low bits; sequential keys must not map to
  // sequential low bits.
  std::set<uint64_t> low_bits;
  for (uint64_t k = 0; k < 4096; ++k) {
    low_bits.insert(HashInt64(k) & 0xFF);
  }
  EXPECT_EQ(low_bits.size(), 256u);  // all 256 buckets hit within 4k keys
}

TEST(Hash, BytesMatchesPrefixStability) {
  const char data[] = "hello world, this is a hash test";
  uint64_t h1 = HashBytes(data, sizeof(data) - 1);
  uint64_t h2 = HashBytes(data, sizeof(data) - 1);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(HashBytes(data, 5), HashBytes(data, 6));
}

TEST(Hash, CombineOrderSensitive) {
  EXPECT_NE(HashCombine(HashInt64(1), HashInt64(2)),
            HashCombine(HashInt64(2), HashInt64(1)));
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, BelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Zipf, UniformWhenThetaZero) {
  Rng rng(11);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(11, 0);
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) counts[zipf.Next(rng)]++;
  for (int k = 1; k <= 10; ++k) {
    EXPECT_NEAR(counts[k], kSamples / 10.0, kSamples * 0.01);
  }
}

TEST(Zipf, InUniverse) {
  Rng rng(12);
  for (double theta : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    ZipfGenerator zipf(1000, theta);
    for (int i = 0; i < 10000; ++i) {
      uint64_t v = zipf.Next(rng);
      EXPECT_GE(v, 1u);
      EXPECT_LE(v, 1000u);
    }
  }
}

TEST(Zipf, SkewConcentratesMass) {
  // The paper notes that z > 1 means >50% of tuples hit the first 20% of the
  // build relation; verify the sampler matches the analytic distribution.
  Rng rng(13);
  ZipfGenerator zipf(1000, 1.5);
  const int kSamples = 200000;
  int in_top_20pct = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Next(rng) <= 200) in_top_20pct++;
  }
  EXPECT_GT(in_top_20pct, kSamples / 2);
}

TEST(Zipf, FrequencyMatchesPowerLaw) {
  Rng rng(14);
  const double theta = 1.0;
  ZipfGenerator zipf(100, theta);
  std::vector<int> counts(101, 0);
  const int kSamples = 500000;
  for (int i = 0; i < kSamples; ++i) counts[zipf.Next(rng)]++;
  // P(1)/P(2) should be 2^theta = 2.
  double ratio = static_cast<double>(counts[1]) / counts[2];
  EXPECT_NEAR(ratio, 2.0, 0.15);
}

TEST(AlignedBuffer, Alignment) {
  AlignedBuffer buf(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % kCacheLineSize, 0u);
  EXPECT_GE(buf.size(), 100u);
  EXPECT_EQ(buf.size() % kCacheLineSize, 0u);
}

TEST(AlignedBuffer, EnsureCapacityGrowsOnly) {
  AlignedBuffer buf(128);
  auto* p = buf.data();
  buf.EnsureCapacity(64);
  EXPECT_EQ(buf.data(), p);  // no shrink, no realloc
  buf.EnsureCapacity(4096);
  EXPECT_GE(buf.size(), 4096u);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a(256);
  auto* p = a.data();
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.data(), nullptr);
}

TEST(ByteCounter, MergeAccumulates) {
  ByteCounter a, b;
  a.AddRead(JoinPhase::kJoin, 100);
  a.AddWrite(JoinPhase::kJoin, 50);
  b.AddRead(JoinPhase::kJoin, 1);
  b.Merge(a);
  EXPECT_EQ(b.phase(JoinPhase::kJoin).read, 101u);
  EXPECT_EQ(b.phase(JoinPhase::kJoin).written, 50u);
}

TEST(ByteCounter, PhaseNames) {
  EXPECT_STREQ(JoinPhaseName(JoinPhase::kPartitionPass1), "partition pass 1");
  EXPECT_STREQ(JoinPhaseName(JoinPhase::kJoin), "join");
}

TEST(CpuInfo, SaneDefaults) {
  const CpuInfo& info = GetCpuInfo();
  EXPECT_GE(info.logical_cores, 1);
  EXPECT_GT(info.l1d_bytes, 0);
  EXPECT_GT(info.l2_bytes, 0);
  EXPECT_GT(info.llc_bytes, 0);
  EXPECT_GE(info.llc_bytes, info.l2_bytes);
}

TEST(Env, DefaultsWhenUnset) {
  EXPECT_EQ(GetEnvInt64("PJOIN_DOES_NOT_EXIST", 42), 42);
  EXPECT_DOUBLE_EQ(GetEnvDouble("PJOIN_DOES_NOT_EXIST", 1.5), 1.5);
  EXPECT_EQ(GetEnvString("PJOIN_DOES_NOT_EXIST", "x"), "x");
}

TEST(Env, ParsesSetValues) {
  setenv("PJOIN_TEST_KNOB", "123", 1);
  EXPECT_EQ(GetEnvInt64("PJOIN_TEST_KNOB", 0), 123);
  setenv("PJOIN_TEST_KNOB", "2.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("PJOIN_TEST_KNOB", 0), 2.5);
  unsetenv("PJOIN_TEST_KNOB");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter tp({"name", "value"});
  tp.AddRow({"a", "1"});
  tp.AddRow({"long-name", "22"});
  std::string out = tp.ToString();
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinter, Formatters) {
  EXPECT_EQ(TablePrinter::Mib(1024.0 * 1024.0), "1.0 MiB");
  EXPECT_EQ(TablePrinter::TuplesPerSec(2.5e9), "2.50 G T/s");
  EXPECT_EQ(TablePrinter::Percent(0.5), "+50.0%");
  EXPECT_EQ(TablePrinter::Double(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace pjoin
